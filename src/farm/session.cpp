#include "farm/session.h"

#include <algorithm>
#include <sstream>

#include "fpga/arm_host.h"
#include "fpga/faulty_bus.h"
#include "fpga/fpga_design.h"

namespace tmsim::farm {

core::EngineOptions effective_engine_options(const JobSpec& spec,
                                             bool canonical_seed) {
  core::EngineOptions opts = spec.engine;
  if (canonical_seed) {
    opts.seed = 1;
  } else if (opts.seed == 1) {
    opts.seed = derive_seed(spec.seed, "schedule");
  }
  return opts;
}

std::string engine_cache_key(const JobSpec& spec) {
  const core::EngineOptions opts = effective_engine_options(spec, true);
  std::ostringstream os;
  os << spec.net.width << "x" << spec.net.height << ":"
     << static_cast<int>(spec.net.topology) << ":" << spec.net.router.num_vcs
     << ":" << spec.net.router.queue_depth << ":"
     << static_cast<int>(opts.policy) << ":" << opts.num_shards << ":"
     << static_cast<int>(opts.partition) << ":"
     << static_cast<int>(opts.scheduler);
  return os.str();
}

std::uint64_t engine_cache_key_hash(const JobSpec& spec) {
  const std::string key = engine_cache_key(spec);
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a, as in fingerprint()
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h == 0 ? 0xcbf29ce484222325ull : h;
}

SimSession::SimSession(const JobSpec& spec) : spec_(spec) {
  spec_.validate();
  if (spec_.kind != JobKind::kHostedFpga) {
    return;
  }
  fpga::FpgaBuildConfig build;
  build.router = spec_.net.router;
  build.num_shards = spec_.engine.num_shards;
  build.partition = spec_.engine.partition;
  build.engine_seed = effective_engine_options(spec_, false).seed;
  build.scheduler = spec_.engine.scheduler;
  design_ = std::make_unique<fpga::FpgaDesign>(build);

  fpga::ArmHost::Workload wl;
  wl.be_load = spec_.workload.be_load;
  wl.be_vcs = spec_.workload.be_vcs;
  wl.be_bytes = spec_.workload.be_bytes;
  wl.gt_streams = spec_.resolved_gt_streams();
  wl.rng_on_fpga = true;
  wl.rng_seed =
      static_cast<std::uint32_t>(derive_seed(spec_.seed, "host-rng"));

  fpga::BusInterface* bus = design_.get();
  const fpga::FaultRates& fr = spec_.faults;
  if (fr.read_flip + fr.write_flip + fr.dropped_write + fr.stuck_busy +
          fr.spurious_overrun >
      0.0) {
    faulty_bus_ = std::make_unique<fpga::FaultyBus>(
        *design_, fr, derive_seed(spec_.seed, "faults"));
    bus = faulty_bus_.get();
  }
  host_ = std::make_unique<fpga::ArmHost>(*bus, build, wl);
  host_->configure_network(spec_.net.width, spec_.net.height,
                           spec_.net.topology);
}

SimSession::~SimSession() = default;

void SimSession::attach_first(core::SeqNocSimulation& sim) {
  sim.reset();
  traffic::TrafficHarness::Options opt;
  opt.seed = derive_seed(spec_.seed, "stimuli");
  opt.verify_payload = spec_.workload.verify_payload;
  opt.overload_threshold = spec_.workload.overload_threshold;
  opt.stop_on_overload = spec_.workload.stop_on_overload;
  opt.warmup_cycles = spec_.workload.warmup_cycles;
  harness_ = std::make_unique<traffic::TrafficHarness>(sim, opt);
  for (const traffic::GtStream& s : spec_.resolved_gt_streams()) {
    harness_->add_gt_stream(s);
  }
  if (spec_.workload.be_load > 0.0) {
    harness_->set_be_load(spec_.workload.be_load, spec_.workload.be_vcs,
                          spec_.workload.be_bytes);
  }
  started_ = true;
}

void SimSession::attach(core::SeqNocSimulation& sim, bool paranoid) {
  TMSIM_CHECK_MSG(needs_engine(), "hosted sessions own their stack; "
                                  "attach() is core-traffic only");
  TMSIM_CHECK_MSG(sim_ == nullptr, "session is already attached");
  if (!(sim.config() == spec_.net)) {
    throw ContextualError(
        "attach target simulates a different network than the job spec",
        {{"job", spec_.name}});
  }
  if (!started_) {
    attach_first(sim);
  } else {
    sim.restore(checkpoint_);
    harness_->rebind(sim);
    if (paranoid) {
      // restore() already digest-verified the load; re-derive both
      // counters from scratch as an independent witness (the farm's
      // equivalent of the host's commit-counter mirror cross-check).
      TMSIM_CHECK_MSG(sim.cycle() == checkpoint_.cycle,
                      "resumed engine cycle disagrees with the checkpoint");
      TMSIM_CHECK_MSG(core::engine_state_digest(sim.engine()) ==
                          checkpoint_.digest,
                      "resumed engine digest disagrees with the checkpoint");
    }
  }
  sim_ = &sim;
}

void SimSession::detach() {
  TMSIM_CHECK_MSG(sim_ != nullptr, "session is not attached");
  checkpoint_ = sim_->checkpoint();
  sim_ = nullptr;
}

void SimSession::bind_cancel(
    std::shared_ptr<const std::atomic<bool>> token) {
  cancel_ = std::move(token);
  if (host_) {
    if (cancel_) {
      auto token_copy = cancel_;
      host_->set_cancel_check([token_copy] {
        return token_copy->load(std::memory_order_relaxed);
      });
    } else {
      host_->set_cancel_check({});
    }
  }
}

bool SimSession::aborted() const {
  return host_ != nullptr && host_->aborted();
}

std::string SimSession::abort_reason() const {
  return aborted() ? host_->fault_report().abort_reason : std::string();
}

SystemCycle SimSession::advance(SystemCycle quantum) {
  TMSIM_CHECK_MSG(quantum >= 1, "quantum must be positive");
  if (done()) {
    return 0;
  }
  if (cancel_ && cancel_->load(std::memory_order_relaxed)) {
    return 0;  // cooperative cancellation: no work past the token
  }
  const SystemCycle before = cycles_done_;
  if (spec_.kind == JobKind::kHostedFpga) {
    const DeltaCycle deltas_before =
        design_->configured()
            ? design_->simulation().engine().total_delta_cycles()
            : 0;
    const SystemCycle target =
        std::min<SystemCycle>(cycles_done_ + quantum, spec_.cycles);
    // Incremental so that slicing adds no bus accesses of its own: the
    // access (and fault-injection) sequence is identical however the
    // budget is cut. The counter sync runs exactly once, at completion.
    host_->run_incremental(target);
    cycles_done_ = host_->cycles_simulated();
    last_slice_deltas_ =
        design_->configured()
            ? design_->simulation().engine().total_delta_cycles() -
                  deltas_before
            : 0;
    if (done() && !hw_synced_) {
      host_->sync_hw_counters();
      hw_synced_ = true;
    }
  } else {
    TMSIM_CHECK_MSG(sim_ != nullptr, "advance() needs an attached engine");
    const DeltaCycle deltas_before = sim_->total_delta_cycles();
    const SystemCycle n =
        std::min<SystemCycle>(quantum, spec_.cycles - cycles_done_);
    harness_->run(n);
    cycles_done_ = sim_->cycle();
    last_slice_deltas_ = sim_->total_delta_cycles() - deltas_before;
  }
  return cycles_done_ - before;
}

bool SimSession::done() const {
  if (spec_.kind == JobKind::kHostedFpga) {
    return cycles_done_ >= spec_.cycles || host_->overloaded() ||
           host_->aborted();
  }
  if (cycles_done_ >= spec_.cycles) {
    return true;
  }
  return started_ && harness_->overloaded() &&
         spec_.workload.stop_on_overload;
}

void SimSession::finalize(JobResult& out) const {
  out.spec_fingerprint = spec_.fingerprint();
  out.name = spec_.name;
  out.cycles_simulated = cycles_done_;
  if (spec_.kind == JobKind::kHostedFpga) {
    const auto fill = [&](traffic::PacketClass cls, ClassResult& cr) {
      const analysis::StatAccumulator& acc = host_->latency(cls);
      cr.delivered = acc.count();
      cr.total = acc;
    };
    fill(traffic::PacketClass::kGuaranteedThroughput, out.gt);
    fill(traffic::PacketClass::kBestEffort, out.be);
    out.overloaded = host_->overloaded();
    out.fault_report = host_->fault_report();
    out.access_delay = host_->access_delay();
    if (design_->configured()) {
      out.state_digest =
          core::engine_state_digest(design_->simulation().engine());
    }
    return;
  }
  if (!started_) {
    return;  // never ran: all-zero result
  }
  const auto fill = [&](traffic::PacketClass cls, ClassResult& cr) {
    const traffic::LatencySummary s = harness_->summarize(cls);
    cr.delivered = s.delivered;
    cr.network = s.network;
    cr.access = s.access;
    cr.total = s.total;
  };
  fill(traffic::PacketClass::kGuaranteedThroughput, out.gt);
  fill(traffic::PacketClass::kBestEffort, out.be);
  out.flits_injected = harness_->flits_injected();
  out.flits_delivered = harness_->flits_delivered();
  out.overloaded = harness_->overloaded();
  out.state_digest = sim_ != nullptr
                         ? core::engine_state_digest(sim_->engine())
                         : checkpoint_.digest;
}

JobResult run_job_standalone(const JobSpec& spec) {
  JobResult r;
  r.spec_fingerprint = spec.fingerprint();
  r.name = spec.name;
  try {
    SimSession session(spec);
    std::unique_ptr<core::SeqNocSimulation> sim;
    if (session.needs_engine()) {
      sim = std::make_unique<core::SeqNocSimulation>(
          spec.net, effective_engine_options(spec, /*canonical_seed=*/false));
      session.attach(*sim);
    }
    while (!session.done()) {
      session.advance(spec.cycles);
    }
    if (session.aborted()) {
      // Fault-report escalation: the hardened host stopped gracefully,
      // so its statistics are consistent — finalize them, but the job
      // *failed*, with the same classification the farm applies.
      session.finalize(r);
      r.status = JobStatus::kFailed;
      r.error = session.abort_reason();
      r.failure.kind = FailureKind::kFaultAbort;
      r.failure.message = r.error;
      r.failure.at_cycle = session.cycles_done();
      r.failure.replay = spec.serialize();
    } else {
      session.finalize(r);
      r.status = JobStatus::kDone;
    }
    r.slices = 1;
  } catch (const std::exception& e) {
    r.status = JobStatus::kFailed;
    r.error = e.what();
    r.failure.kind = classify_failure(e);
    r.failure.message = e.what();
    r.failure.replay = spec.serialize();
  }
  return r;
}

}  // namespace tmsim::farm
