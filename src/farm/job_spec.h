// JobSpec: the unit of work the simulation farm accepts — one complete,
// self-describing simulation request: which network to build, which
// workload to offer it, which engine to run it on, for how many system
// cycles, and under which seed. A spec has a *stable serialized form*
// (canonical key=value text) and an FNV-1a fingerprint over that form,
// so job identity survives queues, logs, and re-submission: two specs
// with the same fingerprint request bit-identical simulations.
//
// Determinism contract: everything a job computes is a function of its
// spec alone. All randomness — stimuli, the hosted FPGA's RNG register,
// the fault-injection schedule, the engine's evaluation order — is
// derived from the single `seed` field through domain-separated
// sub-seeds (derive_seed), so one u64 in the spec pins the entire run,
// and no two random consumers ever share a stream by accident.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/noc_block.h"
#include "fpga/faulty_bus.h"
#include "noc/config.h"
#include "traffic/harness.h"
#include "traffic/packet.h"

namespace tmsim::farm {

/// What kind of simulation stack the job runs on.
enum class JobKind : std::uint8_t {
  /// TrafficHarness driving a core engine directly (the fast path).
  kCoreTraffic = 0,
  /// The full hosted platform: ArmHost ↔ (optionally faulty) bus ↔
  /// FpgaDesign, i.e. the paper's Figure-7 stack end to end.
  kHostedFpga = 1,
};

/// Admission priority classes, highest first. A queued job never runs
/// before a queued job of a higher class, and a running lower-class job
/// is preempted (checkpointed and requeued) when higher-class work is
/// waiting.
enum class Priority : std::uint8_t {
  kInteractive = 0,
  kNormal = 1,
  kBatch = 2,
};
inline constexpr std::size_t kNumPriorities = 3;

const char* job_kind_name(JobKind k);
const char* priority_name(Priority p);

/// Format version of the stable serialized form. Emitted as the leading
/// `v=` token by serialize(); deserialize() accepts exactly this version
/// (a missing token means version 1 — the pre-versioning format) and
/// rejects anything else with a structured error, so a decoder never
/// half-parses a spec written by a future release.
inline constexpr std::uint64_t kSpecFormatVersion = 1;

/// The traffic offered to the network (a declarative superset of what
/// TrafficHarness / ArmHost::Workload configure imperatively).
struct WorkloadSpec {
  double be_load = 0.0;                  ///< BE flits/cycle/node (Fig. 1 x-axis)
  std::vector<unsigned> be_vcs = {2, 3};
  std::size_t be_bytes = traffic::kBePacketBytes;
  /// Use the Fig. 1 GT population (one 2-hop stream per node) with this
  /// period; mutually exclusive with explicit `gt_streams`.
  bool fig1_gt = false;
  SystemCycle gt_period = 600;
  std::vector<traffic::GtStream> gt_streams;
  /// Packets injected before this cycle are excluded from summaries
  /// (core-traffic jobs only; the hosted stack has no warmup support).
  SystemCycle warmup_cycles = 0;
  bool verify_payload = false;           ///< core-traffic jobs only
  bool stop_on_overload = true;
  std::size_t overload_threshold = 1u << 16;

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

struct JobSpec {
  /// Job name, for humans and logs. Restricted to [A-Za-z0-9._-] so the
  /// serialized form stays a flat token stream.
  std::string name = "job";
  JobKind kind = JobKind::kCoreTraffic;
  Priority priority = Priority::kNormal;
  noc::NetworkConfig net;
  WorkloadSpec workload;
  /// Engine choice. `engine.seed` is advisory: the farm canonicalizes it
  /// (schedule seeds cannot change results, only evaluation order), so
  /// it does not participate in worker-side engine-cache identity.
  core::EngineOptions engine;
  /// The job's one true seed (see derive_seed).
  std::uint64_t seed = 1;
  /// System cycles to simulate.
  SystemCycle cycles = 1000;
  /// Wall-clock deadline in milliseconds, measured from submit. 0 = no
  /// deadline. Checked cooperatively at slice boundaries (and, for
  /// hosted jobs, between simulation periods), so the cancellation
  /// latency is one quantum/period; an expired job resolves to
  /// kCancelled with CancelCause::kDeadline.
  std::uint64_t deadline_ms = 0;
  /// Times a *transient* failure (FailureKind kTransient / kFaultAbort)
  /// is re-executed before the job is quarantined as poison. Retries
  /// re-enter through the normal admission classes (back of class, with
  /// seeded deterministic backoff) so they never starve fresh work.
  /// Deterministic failures (convergence, engine errors) never retry.
  std::uint32_t max_retries = 0;
  /// Bus fault injection (hosted jobs only; all-zero = clean bus).
  fpga::FaultRates faults;

  /// Canonical serialized form: space-separated key=value tokens in a
  /// fixed key order, doubles as shortest round-trip (%.17g), lists
  /// comma-separated. Stable across runs and platforms.
  std::string serialize() const;
  /// Inverse of serialize(). Unknown keys and malformed values throw —
  /// a spec that does not round-trip must never enter the queue.
  static JobSpec deserialize(const std::string& text);

  /// FNV-1a over serialize(): the job's identity.
  std::uint64_t fingerprint() const;

  /// Throws ContextualError on an unsatisfiable spec: invalid network,
  /// zero cycles, bad name charset, GT streams that violate the one-
  /// stream-per-VC rule, or hosted-job options the ArmHost stack cannot
  /// honour (warmup, payload verification, faults on a core job).
  void validate() const;

  /// The GT streams this spec resolves to (fig1 population or explicit).
  std::vector<traffic::GtStream> resolved_gt_streams() const;

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// Domain-separated sub-seed: FNV-1a over (base, domain). Every random
/// consumer of a job uses its own domain string — "stimuli", "host-rng",
/// "faults", "schedule" — so streams never collide and adding a consumer
/// never shifts an existing one. Never returns 0 (some sinks treat 0 as
/// "unseeded").
std::uint64_t derive_seed(std::uint64_t base, std::string_view domain);

}  // namespace tmsim::farm
