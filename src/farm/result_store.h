// ResultStore: the thread-safe sink where workers publish finished
// JobResults and submitters collect them. Two access patterns:
//
//   - point lookup / blocking wait by job id (get / wait), and
//   - a bounded completion feed (drain_completions) built on the same
//     fpga::CyclicBuffer that decouples the ARM from the FPGA (§5.2) —
//     the consumer that falls behind loses the *oldest* notifications
//     (drop-oldest, counted), never blocks a worker, and can always
//     recover the dropped results through get().
//
// Sharded hot path (DESIGN.md §14): results are striped across S
// independently-locked shards keyed by job id, each with its own
// condition variable, so concurrent publishers (and waiters on
// different jobs) never serialize against each other. Only the bounded
// completion feed keeps a single short lock — it is an ordered stream
// by definition. Completion order is carried by a per-result sequence
// stamp so all() can still present results in publish order.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "farm/job_result.h"
#include "fpga/cyclic_buffer.h"

namespace tmsim::farm {

class ResultStore {
 public:
  explicit ResultStore(std::size_t completion_feed_depth = 64,
                       std::size_t num_shards = 8);

  /// Publishes a final result (workers call this exactly once per job).
  /// Never blocks. Returns true when the bounded completion feed was
  /// full and its *oldest* notification was dropped to make room
  /// (drop-oldest, pinned by tests/farm/result_store_test.cpp); the
  /// caller surfaces the drop as `farm.results.feed_dropped`.
  bool put(JobResult result);

  std::optional<JobResult> get(std::uint64_t job_id) const;

  /// Blocks until the job's result is published, then returns it.
  JobResult wait(std::uint64_t job_id) const;

  /// All published results, in completion order.
  std::vector<JobResult> all() const;
  std::size_t size() const;

  /// Job ids completed since the last drain, oldest first. When the feed
  /// overflowed in between, the oldest ids were dropped (see
  /// completions_dropped()); their results remain retrievable via get().
  std::vector<std::uint64_t> drain_completions();
  std::uint64_t completions_dropped() const;

  /// Deadline-bounded blocking drain for streaming consumers: waits up
  /// to `timeout` for at least one completion notification, then
  /// returns up to `max_ids` of them, oldest first (same drop-oldest
  /// accounting as drain_completions). Returns an empty vector on
  /// timeout — never throws, never blocks past the deadline. A
  /// `max_ids` of 0 means "no batch bound". Wakes immediately when a
  /// notification is already pending.
  std::vector<std::uint64_t> next_batch(std::size_t max_ids,
                                        std::chrono::microseconds timeout);

  /// Completion-feed occupancy (notifications waiting to be drained)
  /// and capacity — surfaced by SimFarm::introspect().
  std::size_t feed_fill() const;
  std::size_t feed_capacity() const;

 private:
  struct Stored {
    std::uint64_t seq = 0;  ///< completion order stamp
    JobResult result;
  };
  struct Shard {
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    std::unordered_map<std::uint64_t, Stored> results;
  };

  Shard& shard_for(std::uint64_t job_id) const {
    return *shards_[job_id % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> seq_{0};

  mutable std::mutex feed_mu_;
  std::condition_variable feed_cv_;
  fpga::CyclicBuffer feed_;
  std::uint64_t dropped_ = 0;
};

}  // namespace tmsim::farm
