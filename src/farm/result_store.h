// ResultStore: the thread-safe sink where workers publish finished
// JobResults and submitters collect them. Two access patterns:
//
//   - point lookup / blocking wait by job id (get / wait), and
//   - a bounded completion feed (drain_completions) built on the same
//     fpga::CyclicBuffer that decouples the ARM from the FPGA (§5.2) —
//     the consumer that falls behind loses the *oldest* notifications
//     (drop-oldest, counted), never blocks a worker, and can always
//     recover the dropped results through get().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "farm/job_result.h"
#include "fpga/cyclic_buffer.h"

namespace tmsim::farm {

class ResultStore {
 public:
  explicit ResultStore(std::size_t completion_feed_depth = 64);

  /// Publishes a final result (workers call this exactly once per job).
  /// Never blocks. Returns true when the bounded completion feed was
  /// full and its *oldest* notification was dropped to make room
  /// (drop-oldest, pinned by tests/farm/result_store_test.cpp); the
  /// caller surfaces the drop as `farm.results.feed_dropped`.
  bool put(JobResult result);

  std::optional<JobResult> get(std::uint64_t job_id) const;

  /// Blocks until the job's result is published, then returns it.
  JobResult wait(std::uint64_t job_id) const;

  /// All published results, in completion order.
  std::vector<JobResult> all() const;
  std::size_t size() const;

  /// Job ids completed since the last drain, oldest first. When the feed
  /// overflowed in between, the oldest ids were dropped (see
  /// completions_dropped()); their results remain retrievable via get().
  std::vector<std::uint64_t> drain_completions();
  std::uint64_t completions_dropped() const;

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // id → results_ pos
  std::vector<JobResult> results_;
  fpga::CyclicBuffer feed_;
  std::uint64_t feed_seq_ = 0;  ///< completion sequence (feed timestamps)
  std::uint64_t dropped_ = 0;
};

}  // namespace tmsim::farm
