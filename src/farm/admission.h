// AdmissionQueue: bounded, priority-classed job intake with backpressure.
//
// The farm never blocks a submitter: a submit() against a full queue (or
// a stopped farm, or with an invalid/oversized spec) returns a structured
// rejection immediately — reject-with-reason, the same discipline the
// FPGA's stimuli interface applies to a full cyclic buffer (§5.3: check
// free space, never overrun).
//
// Ordering: strict priority (interactive > normal > batch), FIFO within
// a class. Preempted jobs re-enter through requeue(), which is exempt
// from the capacity bound — admitted work must always be able to come
// back, or preemption could deadlock against a full queue — and goes to
// the *front* of its class so a preempted job is not overtaken by later
// submissions of its own class.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>

#include "farm/job_spec.h"
#include "farm/session.h"

namespace tmsim::farm {

enum class RejectReason : std::uint8_t {
  kNone = 0,
  kQueueFull = 1,    ///< capacity reached; resubmit later
  kStopped = 2,      ///< farm is shutting down
  kInvalidSpec = 3,  ///< JobSpec::validate() threw (detail has the why)
  kTooLarge = 4,     ///< cycle budget above the farm's per-job ceiling
};

const char* reject_reason_name(RejectReason r);

struct SubmitOutcome {
  bool accepted = false;
  std::uint64_t job_id = 0;            ///< valid when accepted
  RejectReason reason = RejectReason::kNone;
  std::string detail;                  ///< human-readable rejection cause
};

/// One queued unit of work. `session` is null for a fresh submission and
/// carries the resumable execution state for a preempted one.
struct QueuedJob {
  std::uint64_t job_id = 0;
  JobSpec spec;
  std::shared_ptr<SimSession> session;
  std::size_t preemptions = 0;
  std::size_t slices = 0;
  double submitted_us = 0.0;  ///< timestamp of the original submit
  double queued_us = 0.0;     ///< timestamp of the last (re)enqueue
  double first_us = 0.0;    ///< timestamp of first execution (0 = never ran)
  double exec_us = 0.0;     ///< accumulated execution time
};

class AdmissionQueue {
 public:
  /// `capacity` bounds *fresh* submissions queued at once;
  /// `max_job_cycles` is the per-job cycle ceiling (kTooLarge above it).
  AdmissionQueue(std::size_t capacity, SystemCycle max_job_cycles);

  /// Validates and either enqueues (assigning a job id) or rejects.
  /// Never blocks.
  SubmitOutcome submit(JobSpec spec, double now_us);

  /// Re-enqueues preempted work at the front of its class. Exempt from
  /// the capacity bound; only fails (returns false) after stop().
  bool requeue(QueuedJob job, double now_us);

  /// Blocks until work is available or the queue is stopped-and-empty
  /// (then nullopt). Highest priority class first, FIFO within a class.
  std::optional<QueuedJob> pop_blocking();

  /// True when any queued job outranks `p` — the preemption predicate
  /// workers poll between quanta. Lock-free fast path via a relaxed
  /// depth snapshot would be overkill at quantum granularity; this takes
  /// the mutex.
  bool has_higher_than(Priority p) const;

  /// Wakes all waiters; pop_blocking() drains the backlog then returns
  /// nullopt. Subsequent submits are rejected with kStopped.
  void stop();
  bool stopped() const;

  std::size_t depth() const;
  std::size_t depth(Priority p) const;
  std::uint64_t jobs_submitted() const;   ///< accepted fresh submissions
  std::uint64_t jobs_rejected() const;

 private:
  const std::size_t capacity_;
  const SystemCycle max_job_cycles_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedJob> classes_[kNumPriorities];
  std::size_t fresh_queued_ = 0;  ///< fresh entries across classes
  bool stopped_ = false;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace tmsim::farm
