// AdmissionQueue: bounded, priority-classed job intake with backpressure.
//
// ## Backpressure contract (DESIGN.md §13)
//
// The farm never blocks a submitter: a submit() against a full queue (or
// a stopped farm, or with an invalid/oversized spec) returns a structured
// rejection immediately — reject-with-reason, the same discipline the
// FPGA's stimuli interface applies to a full cyclic buffer (§5.3: check
// free space, never overrun). A kQueueFull outcome carries everything a
// well-behaved submitter needs to make a shedding decision:
//
//   - `queue_depth`    — total jobs queued at the instant of rejection,
//   - `queue_capacity` — the fresh-submission bound that was hit,
//   - `retry_after_us` — a deterministic resubmission hint,
//                        kRetryAfterUsPerJob × fresh backlog. It is a
//                        *pure function of queue state*, so identical
//                        rejection states produce identical hints
//                        (load-test replays stay reproducible).
//
// The hint is advisory: resubmitting earlier is never an error, it just
// earns another structured reject. Capacity bounds only *fresh*
// submissions; requeued work (preemption, retry) is exempt, because
// admitted work must always be able to come back.
//
// Ordering: strict priority (interactive > normal > batch), FIFO within
// a class. Preempted jobs re-enter through requeue(kFront) and go to the
// *front* of their class so a preempted job is not overtaken by later
// submissions of its own class. Retried jobs re-enter through
// requeue(kBack) — the back of their class, optionally with a
// `not_before_us` backoff stamp — so a flaky job never starves fresh
// work of its own class. A job whose not_before_us lies in the future is
// invisible to pop_blocking() until the backoff expires.
//
// ## Sharded hot path (DESIGN.md §14)
//
// Internally each priority class is split into S shards, each a small
// seq-sorted deque behind its own mutex. Ordering is carried by *global
// sequence tickets*, not by queue position: every enqueue draws a ticket
// from a lock-free counter (back tickets count up, front-requeue tickets
// count down), and pop serves the minimum-ticket eligible job of the
// highest non-empty class — which reproduces the exact strict-priority /
// FIFO-among-eligible order of the old single-mutex queue. A submitter
// therefore touches one atomic (capacity reservation), one ticket draw
// and one shard mutex; submitters only collide 1/S of the time, and
// never hold a lock while validating a spec. Class occupancy lives in
// per-class atomic counters so has_higher_than(), the per-slice
// preemption probe, is lock-free in the common "no higher work" case.
// Wakeups go through a dedicated wait mutex + enqueue ticket so a
// blocked popper can never miss an enqueue that raced its scan.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "farm/job_spec.h"
#include "farm/session.h"
#include "obs/trace.h"

namespace tmsim::farm {

enum class RejectReason : std::uint8_t {
  kNone = 0,
  kQueueFull = 1,    ///< capacity reached; see retry_after_us
  kStopped = 2,      ///< farm is shutting down
  kInvalidSpec = 3,  ///< JobSpec::validate() threw (detail has the why)
  kTooLarge = 4,     ///< cycle budget above the farm's per-job ceiling
};

const char* reject_reason_name(RejectReason r);

/// Deterministic retry-after slope: microseconds of suggested backoff
/// per fresh job already queued at rejection time.
inline constexpr double kRetryAfterUsPerJob = 500.0;

struct SubmitOutcome {
  bool accepted = false;
  std::uint64_t job_id = 0;            ///< valid when accepted
  RejectReason reason = RejectReason::kNone;
  std::string detail;                  ///< human-readable rejection cause
  /// Backpressure context, filled on every outcome: total queued jobs
  /// (after enqueue when accepted, at rejection otherwise) and the
  /// fresh-submission capacity.
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  /// kQueueFull only: deterministic resubmission hint (see header).
  /// 0 on every other outcome.
  double retry_after_us = 0.0;
  /// Tracing identity assigned at admission (trace_id 0 when the job was
  /// not sampled). Lets a network front-end report the server-side trace
  /// back to the remote submitter.
  obs::TraceContext trace;
};

/// One queued unit of work. `session` is null for a fresh submission (or
/// a retry restarting from scratch) and carries the resumable execution
/// state for a preempted / reclaimed one.
struct QueuedJob {
  std::uint64_t job_id = 0;
  JobSpec spec;
  std::shared_ptr<SimSession> session;
  bool fresh = true;          ///< counts against capacity until first pop
  std::size_t attempts = 1;   ///< executions begun (1 = first attempt)
  std::size_t preemptions = 0;
  std::size_t slices = 0;
  double submitted_us = 0.0;  ///< timestamp of the original submit
  double queued_us = 0.0;     ///< timestamp of the last (re)enqueue
  double first_us = 0.0;    ///< timestamp of first execution (0 = never ran)
  double exec_us = 0.0;     ///< accumulated execution time
  /// Absolute deadline (farm clock), stamped at submit from
  /// spec.deadline_ms. 0 = none.
  double deadline_at_us = 0.0;
  /// Retry backoff: invisible to pop_blocking() before this instant.
  double not_before_us = 0.0;
  /// Batch-compatibility key (engine-cache identity in the farm),
  /// stamped at enqueue from the queue's batch_key_fn. 0 = unbatchable.
  std::uint64_t batch_key = 0;
  /// Global FIFO ticket (queue-internal; see header).
  std::uint64_t seq = 0;
  /// Distributed-tracing identity (DESIGN.md §15), stamped at submit
  /// when the job is sampled. trace_id 0 (the default) disables every
  /// downstream recording site for this job.
  obs::TraceContext trace;
  /// Currently open execution-segment span (one per dispatch), 0
  /// between dispatches. Owned by the worker running the job.
  std::uint64_t exec_span = 0;
  double exec_span_start_us = 0.0;
  /// Shard index of the last enqueue (for dequeue span attribution).
  std::size_t enqueue_shard = 0;
};

/// Where requeued work re-enters its priority class.
enum class RequeuePosition : std::uint8_t {
  kFront = 0,  ///< preemption / supervisor reclaim: must not be overtaken
  kBack = 1,   ///< retry: must not starve fresh same-class work
};

class AdmissionQueue {
 public:
  /// Computes a job's batch-compatibility key (the farm passes the
  /// engine-cache key hash). Jobs pop together only when keys match.
  using BatchKeyFn = std::function<std::uint64_t(const JobSpec&)>;
  /// Runs on accepted submissions after the job id is assigned but
  /// *before* the job becomes poppable — the farm installs its per-job
  /// control record here so a worker can never see a control-less job.
  /// Called with no queue locks held.
  using AcceptHook = std::function<void(std::uint64_t job_id,
                                        const JobSpec& spec)>;

  /// `capacity` bounds *fresh* submissions queued at once;
  /// `max_job_cycles` is the per-job cycle ceiling (kTooLarge above it).
  /// `now_fn` supplies the clock `not_before_us` stamps are compared
  /// against (defaults to a steady µs clock; the farm passes its own so
  /// queue time and timeline time share an epoch). `num_shards` is the
  /// per-class shard count; `batch_key_fn` enables pop_batch_blocking.
  /// A non-null `tracer` samples submissions and records the
  /// enqueue/dequeue spans of sampled jobs (span timestamps come from
  /// `now_fn`, so all of a trace's spans share one clock).
  AdmissionQueue(std::size_t capacity, SystemCycle max_job_cycles,
                 std::function<double()> now_fn = {},
                 std::size_t num_shards = 4, BatchKeyFn batch_key_fn = {},
                 obs::Tracer* tracer = nullptr);

  /// Validates and either enqueues (assigning a job id and stamping the
  /// deadline) or rejects. Never blocks. `on_accept`, when given, runs
  /// after the id is assigned and before the job is visible to poppers.
  /// A non-null `remote` marks the submission as arriving over the wire
  /// with that client-side trace identity: the job is then *always*
  /// sampled (the client already paid for a trace; dropping the server
  /// half would orphan it) and the client's ids are recorded as span
  /// link attributes on the submit span.
  SubmitOutcome submit(JobSpec spec, double now_us,
                       const AcceptHook& on_accept = {},
                       const obs::TraceContext* remote = nullptr);

  /// Re-enqueues admitted work. Exempt from the capacity bound and
  /// deliberately allowed after stop() — admitted work must always be
  /// able to come back, and shutdown drains the backlog. Does not touch
  /// the preemption counter — the caller accounts for *why* the job
  /// came back. Always returns true.
  bool requeue(QueuedJob job, double now_us,
               RequeuePosition pos = RequeuePosition::kFront);

  /// Blocks until eligible work is available (highest priority class
  /// first, FIFO-by-ticket within a class, jobs with a future
  /// not_before_us skipped until their backoff expires) or the queue is
  /// stopped-and-empty (then nullopt). Backoff'd jobs are still drained
  /// after stop(): admitted work always resolves.
  std::optional<QueuedJob> pop_blocking();

  /// Like pop_blocking(), but amortizes dispatch: after serving the
  /// head job it keeps popping while the *next* eligible job of the
  /// same class (in ticket order — nothing is skipped or overtaken)
  /// shares the head's batch key, up to `max_batch` jobs. Returns an
  /// empty vector exactly when pop_blocking() would return nullopt.
  /// With no batch_key_fn configured every batch has size 1.
  std::vector<QueuedJob> pop_batch_blocking(std::size_t max_batch);

  /// True when any queued *eligible* job outranks `p` — the preemption
  /// predicate workers poll between quanta. Lock-free when every higher
  /// class is empty.
  bool has_higher_than(Priority p) const;

  /// Wakes all waiters; pop_blocking() drains the backlog then returns
  /// nullopt. Subsequent submits are rejected with kStopped.
  void stop();
  bool stopped() const;

  std::size_t depth() const;
  std::size_t depth(Priority p) const;
  std::uint64_t jobs_submitted() const;   ///< accepted fresh submissions
  std::uint64_t jobs_rejected() const;

  /// Per-shard occupancy snapshot for SimFarm::introspect().
  struct ShardDepth {
    std::size_t depth = 0;
    /// queued_us of the oldest-ticket job in the shard (0 when empty);
    /// `now - oldest_queued_us` is the shard's oldest-ticket age.
    double oldest_queued_us = 0.0;
  };
  /// Indexed [priority class][shard]. Takes each shard lock briefly;
  /// callable from any thread.
  std::vector<std::vector<ShardDepth>> introspect_shards() const;

 private:
  /// One seq-sorted sub-queue. Entries are kept ordered by ticket so a
  /// scan reads eligible candidates in FIFO order.
  struct Shard {
    mutable std::mutex mu;
    std::deque<QueuedJob> jobs;
  };
  struct ClassQueue {
    std::vector<std::unique_ptr<Shard>> shards;
    std::atomic<std::size_t> count{0};   ///< jobs across shards
    std::atomic<std::size_t> rr{0};      ///< round-robin enqueue cursor
  };

  void enqueue(QueuedJob job, RequeuePosition pos);
  void signal_enqueue();
  /// Scans class `c` (all shard locks held in index order) for the
  /// minimum-ticket eligible job; removes and returns it. Updates
  /// `next_eligible` with the earliest backoff expiry seen.
  std::optional<QueuedJob> take_min_eligible(ClassQueue& cls, double now,
                                             double& next_eligible,
                                             std::uint64_t require_key,
                                             bool key_constrained);

  const std::size_t capacity_;
  const SystemCycle max_job_cycles_;
  const std::function<double()> now_fn_;
  const std::size_t num_shards_;
  const BatchKeyFn batch_key_fn_;
  obs::Tracer* const tracer_;

  std::array<ClassQueue, kNumPriorities> classes_;

  // Global order tickets: fresh/back enqueues count up from the middle
  // of the range, front requeues count down — so a front requeue always
  // orders before everything already queued, and repeated front
  // requeues keep push_front's most-recent-first order.
  std::atomic<std::uint64_t> back_seq_{1ull << 32};
  std::atomic<std::uint64_t> front_seq_{(1ull << 32) - 1};

  std::atomic<std::size_t> total_count_{0};
  std::atomic<std::size_t> fresh_queued_{0};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> next_job_id_{1};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};

  // Wakeup protocol: enq_ticket_ is bumped under wait_mu_ after every
  // enqueue/stop, so a popper that saw nothing re-checks the ticket
  // under wait_mu_ before sleeping — a racing enqueue can't be missed.
  mutable std::mutex wait_mu_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> enq_ticket_{0};
};

}  // namespace tmsim::farm
