// AdmissionQueue: bounded, priority-classed job intake with backpressure.
//
// ## Backpressure contract (DESIGN.md §13)
//
// The farm never blocks a submitter: a submit() against a full queue (or
// a stopped farm, or with an invalid/oversized spec) returns a structured
// rejection immediately — reject-with-reason, the same discipline the
// FPGA's stimuli interface applies to a full cyclic buffer (§5.3: check
// free space, never overrun). A kQueueFull outcome carries everything a
// well-behaved submitter needs to make a shedding decision:
//
//   - `queue_depth`    — total jobs queued at the instant of rejection,
//   - `queue_capacity` — the fresh-submission bound that was hit,
//   - `retry_after_us` — a deterministic resubmission hint,
//                        kRetryAfterUsPerJob × fresh backlog. It is a
//                        *pure function of queue state*, so identical
//                        rejection states produce identical hints
//                        (load-test replays stay reproducible).
//
// The hint is advisory: resubmitting earlier is never an error, it just
// earns another structured reject. Capacity bounds only *fresh*
// submissions; requeued work (preemption, retry) is exempt, because
// admitted work must always be able to come back.
//
// Ordering: strict priority (interactive > normal > batch), FIFO within
// a class. Preempted jobs re-enter through requeue(kFront) and go to the
// *front* of their class so a preempted job is not overtaken by later
// submissions of its own class. Retried jobs re-enter through
// requeue(kBack) — the back of their class, optionally with a
// `not_before_us` backoff stamp — so a flaky job never starves fresh
// work of its own class. A job whose not_before_us lies in the future is
// invisible to pop_blocking() until the backoff expires.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "farm/job_spec.h"
#include "farm/session.h"

namespace tmsim::farm {

enum class RejectReason : std::uint8_t {
  kNone = 0,
  kQueueFull = 1,    ///< capacity reached; see retry_after_us
  kStopped = 2,      ///< farm is shutting down
  kInvalidSpec = 3,  ///< JobSpec::validate() threw (detail has the why)
  kTooLarge = 4,     ///< cycle budget above the farm's per-job ceiling
};

const char* reject_reason_name(RejectReason r);

/// Deterministic retry-after slope: microseconds of suggested backoff
/// per fresh job already queued at rejection time.
inline constexpr double kRetryAfterUsPerJob = 500.0;

struct SubmitOutcome {
  bool accepted = false;
  std::uint64_t job_id = 0;            ///< valid when accepted
  RejectReason reason = RejectReason::kNone;
  std::string detail;                  ///< human-readable rejection cause
  /// Backpressure context, filled on every outcome: total queued jobs
  /// (after enqueue when accepted, at rejection otherwise) and the
  /// fresh-submission capacity.
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  /// kQueueFull only: deterministic resubmission hint (see header).
  /// 0 on every other outcome.
  double retry_after_us = 0.0;
};

/// One queued unit of work. `session` is null for a fresh submission (or
/// a retry restarting from scratch) and carries the resumable execution
/// state for a preempted / reclaimed one.
struct QueuedJob {
  std::uint64_t job_id = 0;
  JobSpec spec;
  std::shared_ptr<SimSession> session;
  bool fresh = true;          ///< counts against capacity until first pop
  std::size_t attempts = 1;   ///< executions begun (1 = first attempt)
  std::size_t preemptions = 0;
  std::size_t slices = 0;
  double submitted_us = 0.0;  ///< timestamp of the original submit
  double queued_us = 0.0;     ///< timestamp of the last (re)enqueue
  double first_us = 0.0;    ///< timestamp of first execution (0 = never ran)
  double exec_us = 0.0;     ///< accumulated execution time
  /// Absolute deadline (farm clock), stamped at submit from
  /// spec.deadline_ms. 0 = none.
  double deadline_at_us = 0.0;
  /// Retry backoff: invisible to pop_blocking() before this instant.
  double not_before_us = 0.0;
};

/// Where requeued work re-enters its priority class.
enum class RequeuePosition : std::uint8_t {
  kFront = 0,  ///< preemption / supervisor reclaim: must not be overtaken
  kBack = 1,   ///< retry: must not starve fresh same-class work
};

class AdmissionQueue {
 public:
  /// `capacity` bounds *fresh* submissions queued at once;
  /// `max_job_cycles` is the per-job cycle ceiling (kTooLarge above it).
  /// `now_fn` supplies the clock `not_before_us` stamps are compared
  /// against (defaults to a steady µs clock; the farm passes its own so
  /// queue time and timeline time share an epoch).
  AdmissionQueue(std::size_t capacity, SystemCycle max_job_cycles,
                 std::function<double()> now_fn = {});

  /// Validates and either enqueues (assigning a job id and stamping the
  /// deadline) or rejects. Never blocks.
  SubmitOutcome submit(JobSpec spec, double now_us);

  /// Re-enqueues admitted work. Exempt from the capacity bound and
  /// deliberately allowed after stop() — admitted work must always be
  /// able to come back, and shutdown drains the backlog. Does not touch
  /// the preemption counter — the caller accounts for *why* the job
  /// came back. Always returns true.
  bool requeue(QueuedJob job, double now_us,
               RequeuePosition pos = RequeuePosition::kFront);

  /// Blocks until eligible work is available (highest priority class
  /// first, FIFO within a class, jobs with a future not_before_us
  /// skipped until their backoff expires) or the queue is
  /// stopped-and-empty (then nullopt). Backoff'd jobs are still drained
  /// after stop(): admitted work always resolves.
  std::optional<QueuedJob> pop_blocking();

  /// True when any queued *eligible* job outranks `p` — the preemption
  /// predicate workers poll between quanta.
  bool has_higher_than(Priority p) const;

  /// Wakes all waiters; pop_blocking() drains the backlog then returns
  /// nullopt. Subsequent submits are rejected with kStopped.
  void stop();
  bool stopped() const;

  std::size_t depth() const;
  std::size_t depth(Priority p) const;
  std::uint64_t jobs_submitted() const;   ///< accepted fresh submissions
  std::uint64_t jobs_rejected() const;

 private:
  const std::size_t capacity_;
  const SystemCycle max_job_cycles_;
  const std::function<double()> now_fn_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedJob> classes_[kNumPriorities];
  std::size_t fresh_queued_ = 0;  ///< fresh entries across classes
  bool stopped_ = false;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace tmsim::farm
