// SimFarm: a multi-tenant batch simulation service over the engines —
// many queued JobSpecs, a fixed pool of worker threads, each worker
// owning a small cache of reusable engine instances, results landing in
// a thread-safe ResultStore.
//
// Scheduling model (DESIGN.md §11):
//   - admission through a bounded priority queue (AdmissionQueue) that
//     rejects with a structured reason instead of ever blocking a
//     submitter;
//   - workers run a job in quanta of `preempt_quantum` system cycles;
//     between quanta they poll for waiting higher-priority work and, if
//     any, *preempt*: checkpoint the session (EngineCheckpoint /
//     ArmHost slicing), requeue it at the front of its class, and pick
//     up the urgent job — possibly on a different worker's engine;
//   - the whole dance is invisible in the results: a job preempted N
//     times across M workers returns bit-identical summaries, fault
//     reports, and state digests to a standalone run
//     (tests/farm/farm_determinism_test.cpp enforces this over
//     randomized specs).
//
// Fault tolerance (DESIGN.md §13): every accepted job resolves to
// exactly one terminal status — kDone, kFailed (with a structured
// JobFailure: kind, cycle, last checkpoint, replay tuple), or
// kCancelled (with a CancelCause) — whatever happens to the workers
// running it:
//   - *deadlines & cancellation*: cancel() flips a per-job token that
//     sessions check cooperatively at slice boundaries (core) and
//     simulation-period boundaries (hosted); JobSpec::deadline_ms is
//     enforced the same way, by the worker at each boundary and by the
//     supervisor for jobs still in the queue. Races between cancel and
//     completion resolve deterministically: the first publisher to mark
//     the job terminal wins, the loser is suppressed.
//   - *failure containment*: a worker that sees a job throw — or the
//     hardened ArmHost abort with a FaultReport — publishes a
//     structured failure and keeps serving the queue. Transient classes
//     (TransientError chaos/contention, fault-report escalation) are
//     retried up to JobSpec::max_retries with deterministic seeded
//     backoff, requeued at the *back* of their class so retries never
//     starve fresh work; a transient job that exhausts its budget is
//     poison and lands in quarantined() with its replay tuple.
//   - *worker supervision*: a supervisor thread watches per-worker
//     heartbeats. A worker that dies (cooperatively, at a slice
//     boundary — kill_worker() or a chaos kKillWorker action) is
//     joined, its in-flight job reclaimed from the last checkpoint and
//     requeued at the front of its class, and the pool healed by
//     respawning into the same slot. A worker that is alive but stops
//     beating for `supervisor_miss_threshold` scans is *stuck*; with
//     supervisor_escalate_stuck the supervisor cancels its job
//     (CancelCause::kSupervisor) instead of letting it wedge the pool.
//   - the chaos proof: tests/farm/farm_chaos_test.cpp drives a farm
//     through injected exceptions, forced retries, and worker kills
//     (both flavors) over ≥100 randomized specs under TSan and asserts
//     (a) exactly one terminal result per accepted spec and (b) every
//     completed job bit-identical to a standalone run.
//
// Scaling (DESIGN.md §14): the submit→pop→run→publish pipeline holds no
// global lock. Admission is sharded per class (seq-ticket FIFO), the
// result store is sharded by job id, per-job control blocks are sharded
// by job id, and in-flight accounting is a single atomic — so adding
// workers adds throughput until the machine runs out of cores
// (tests/farm/farm_scaling_test.cpp pins w4 ≥ 2× w1 on a paced
// workload). Two dispatch amortizations ride on top:
//   - *batching*: a worker pops up to FarmOptions::batch_max_jobs
//     consecutive same-class jobs sharing an engine_cache_key (never
//     skipping or reordering anything) and runs them back-to-back on one
//     warm engine; if higher-priority work arrives mid-batch the
//     untouched tail goes back to the front of its class, in order.
//   - *memoization*: with memo_capacity > 0, a kDone result is cached
//     under JobSpec::fingerprint() (LRU-bounded) and an identical later
//     spec is served without simulating — sound because the fingerprint
//     covers the spec's entire canonical serialization and every
//     simulation-visible output is a pure function of the spec
//     (tests/farm/farm_memo_test.cpp proves bit-identity). Served
//     results carry memo_hit in their scheduling record.
//
// Observability (all optional, null = zero overhead):
//   farm.admission.{submitted,accepted,rejected} (+ per-reason labels),
//   farm.queue.depth{class=...} gauges, farm.jobs.{completed,failed
//   (+reason=...),cancelled (+cause=...)}, farm.retries.{scheduled,
//   exhausted}, farm.failures.quarantined, farm.cancellations.requested,
//   farm.supervisor.{scans,workers_lost,jobs_reclaimed,respawns,stuck,
//   deadlines_enforced}, farm.results.feed_dropped,
//   farm.{preemptions,resumes,checkpoints}, per-worker
//   farm.worker.{slices,jobs,busy_us}{worker=i} counters — busy_us
//   bills *every* executed slice, including slices of jobs that later
//   fail or get cancelled — and a farm.worker.utilization gauge at
//   shutdown; plus farm.slice spans on per-worker ChromeTrace tracks
//   (tid 100+worker) with farm.preempt instants.
//
// Distributed tracing + flight recorder + introspection (DESIGN.md
// §15, all off by default and provably free when off):
//   - FarmOptions::tracer samples submissions and threads a
//     TraceContext through the job's whole life — submit, per-shard
//     enqueue/dequeue, one farm.exec segment per dispatch (attach and
//     slice children), retry/backoff, supervisor reclaim, publish — so
//     one job renders as one connected span tree across workers,
//     retries, and preemptions (export via Tracer::write_jsonl /
//     export_chrome; checked by obs::trace_validate).
//   - FarmOptions::flight_recorder_depth arms a bounded per-worker
//     ring of structured events; every kFailed result carries the
//     failing worker's recent events for its job in
//     failure.flight_recording, next to the replay tuple.
//   - introspect() returns a JSON snapshot (per-shard queue depths +
//     oldest-ticket age, worker states + current span, inflight /
//     memo / result-feed counters) from any thread, and
//     introspect_interval_ms arms a thread that writes it to
//     introspect_path periodically.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "farm/admission.h"
#include "farm/result_store.h"
#include "farm/session.h"
#include "obs/flight_recorder.h"

namespace tmsim::obs {
class ChromeTrace;
class Counter;
class MetricsRegistry;
}  // namespace tmsim::obs

namespace tmsim::farm {

/// One observation point of the chaos hook: the farm calls it on the
/// worker thread at every slice boundary, before the slice runs.
struct ChaosEvent {
  std::size_t worker = 0;       ///< worker about to run the slice
  std::uint64_t job_id = 0;
  const JobSpec* spec = nullptr;
  std::size_t attempt = 1;      ///< 1-based execution attempt
  std::size_t slice = 0;        ///< slices already executed for this job
};

/// What the chaos hook may do to the farm (tests/bench only; the hook
/// must be thread-safe — it runs concurrently on every worker).
enum class ChaosAction : std::uint8_t {
  kNone = 0,
  /// Throw TransientError out of the slice (retried up to max_retries).
  kThrowTransient = 1,
  /// Throw a plain Error (classified kEngineError, never retried).
  kThrowPermanent = 2,
  /// The worker dies *gracefully* at this boundary: it detaches the
  /// session (consistent checkpoint + harness pair) and exits; the
  /// supervisor reclaims the job and resumes it from the checkpoint.
  kKillWorker = 3,
  /// The worker dies and its session is lost: the job restarts from
  /// scratch on another worker — bit-identical by the determinism
  /// contract, since everything derives from the spec.
  kKillWorkerLoseSession = 4,
};

/// Outcome of SimFarm::cancel().
enum class CancelResult : std::uint8_t {
  kUnknownJob = 0,      ///< id never accepted by this farm
  kAlreadyFinished = 1, ///< terminal result already published (or racing in)
  kRequested = 2,       ///< token flipped; resolves at the next boundary
};

const char* cancel_result_name(CancelResult r);

/// Post-mortem record of a poison job: a transient failure class that
/// exhausted its retry budget. `replay` is the canonical serialized
/// spec — rerunning it reproduces the failure bit-for-bit.
struct QuarantineRecord {
  std::uint64_t job_id = 0;
  std::string name;
  FailureKind kind = FailureKind::kNone;
  std::size_t attempts = 0;  ///< executions, all failed
  std::string message;       ///< last failure message
  std::string replay;        ///< JobSpec::serialize()
};

struct FarmOptions {
  std::size_t num_workers = 2;
  /// Fresh submissions queued at once before kQueueFull backpressure.
  std::size_t queue_capacity = 64;
  /// System cycles per slice; preemption, cancellation, deadlines, and
  /// chaos are only checked at slice boundaries, so this is the
  /// scheduling latency in simulated cycles.
  SystemCycle preempt_quantum = 256;
  /// Per-job cycle ceiling (admission rejects above it with kTooLarge).
  SystemCycle max_job_cycles = 10'000'000;
  /// Engines a worker keeps warm, LRU-evicted (keyed by topology +
  /// engine options with the canonical schedule seed).
  std::size_t engine_cache_per_worker = 2;
  /// Sub-queues per priority class in the AdmissionQueue — submitters
  /// and poppers contend 1/shards of the time.
  std::size_t admission_shards = 4;
  /// Dispatch batching: a worker pops up to this many *consecutive*
  /// same-class jobs sharing an engine-cache key and runs them
  /// back-to-back on one warm engine. 1 disables batching.
  std::size_t batch_max_jobs = 4;
  /// Spec-fingerprint result memoization: kDone results cached under
  /// JobSpec::fingerprint(), identical later specs served without
  /// simulating (LRU bound = this many entries). 0 disables the memo.
  std::size_t memo_capacity = 0;
  /// Completion-feed depth of the ResultStore.
  std::size_t completion_feed_depth = 64;
  /// Base of the deterministic retry backoff: attempt k of a transient
  /// failure is requeued not-before base × 2^(k-1) (+ seeded jitter in
  /// [0, base)) microseconds from the failure.
  double retry_backoff_base_us = 200.0;
  /// Supervisor heartbeat-scan period; 0 disables the supervisor
  /// entirely (kill_worker() then needs shutdown() to resolve orphans).
  double supervisor_interval_ms = 20.0;
  /// Consecutive scans a busy worker may go without a heartbeat before
  /// it is declared stuck.
  std::size_t supervisor_miss_threshold = 3;
  /// Cancel (CancelCause::kSupervisor) the job of a stuck-but-alive
  /// worker. Off by default: under heavy sanitizer/CI load a healthy
  /// slice can legitimately outlast the threshold.
  bool supervisor_escalate_stuck = false;
  /// Respawn a replacement thread into a lost worker's slot.
  bool respawn_lost_workers = true;
  /// Chaos hook (tests/bench): consulted at every slice boundary.
  std::function<ChaosAction(const ChaosEvent&)> chaos;
  /// Test knobs: force_preempt requeues after *every* quantum even with
  /// no higher-priority work waiting (maximally exercises the
  /// checkpoint/resume path); paranoid_resume re-verifies cycle and
  /// state digest after every restore.
  bool force_preempt = false;
  bool paranoid_resume = false;
  /// Observability sinks (borrowed; must outlive the farm).
  obs::MetricsRegistry* metrics = nullptr;
  obs::ChromeTrace* timeline = nullptr;
  /// Distributed tracing (DESIGN.md §15; borrowed, must outlive the
  /// farm). Sampling rate and span bounds live in the Tracer's own
  /// options; null (the default) costs one branch per site.
  obs::Tracer* tracer = nullptr;
  /// Flight-recorder depth in events per ring (one ring per worker
  /// plus one for the supervisor/shutdown paths). 0 (default) disables
  /// the recorder; when armed, every kFailed result carries a JSONL
  /// dump of the failing worker's recent events for that job in
  /// failure.flight_recording.
  std::size_t flight_recorder_depth = 0;
  /// Periodic introspection: every interval a snapshot thread writes
  /// introspect() to `introspect_path`. 0 (default) disables it.
  double introspect_interval_ms = 0.0;
  std::string introspect_path = "farm_introspect.json";
};

class SimFarm {
 public:
  explicit SimFarm(FarmOptions opt = {});
  /// Shuts down (drains queued and in-flight jobs, joins workers).
  ~SimFarm();

  SimFarm(const SimFarm&) = delete;
  SimFarm& operator=(const SimFarm&) = delete;

  /// Never blocks: either the job is queued (outcome.job_id) or the
  /// outcome says why not — kQueueFull outcomes carry the backpressure
  /// context (depth, capacity, deterministic retry-after hint).
  /// A non-null `remote` marks a submission that arrived over the wire
  /// with that client-side trace context — the job is then always
  /// sampled and the client ids ride on the submit span as link
  /// attributes (see AdmissionQueue::submit).
  SubmitOutcome submit(const JobSpec& spec,
                       const obs::TraceContext* remote = nullptr);

  /// Requests cooperative cancellation. kRequested means the job will
  /// resolve to kCancelled at its next slice/period boundary (or next
  /// scheduling turn, if still queued) — unless it reaches a different
  /// terminal state first; exactly one wins, never both.
  CancelResult cancel(std::uint64_t job_id);

  /// Asks worker `w` to die cooperatively at its next slice boundary
  /// (chaos/test API). `lose_session` picks the hard flavor: the
  /// in-flight session is destroyed and the job restarts from scratch.
  void kill_worker(std::size_t w, bool lose_session = false);

  /// Blocks until the job's result is published.
  JobResult wait(std::uint64_t job_id) { return results_.wait(job_id); }

  /// Blocks until every accepted job has a published result.
  void drain();

  /// Stops intake, drains queued + in-flight work, joins the workers
  /// (supervisor first, so reclaim/respawn cannot race the joins), and
  /// resolves any job stranded by a dying pool as kCancelled — no
  /// accepted job is ever left without a result. Idempotent. Publishes
  /// the end-of-life farm.worker.{utilization,busy_us} instruments.
  void shutdown();

  /// Poison jobs: transient failures that exhausted max_retries.
  std::vector<QuarantineRecord> quarantined() const;

  /// In-flight jobs reclaimed from dead workers so far. Safe to poll
  /// from any thread while the farm runs (the metrics registry's
  /// counters are not) — the robustness bench measures recovery latency
  /// with it.
  std::uint64_t jobs_reclaimed() const;

  const ResultStore& results() const { return results_; }
  ResultStore& results() { return results_; }
  const FarmOptions& options() const { return opt_; }
  std::size_t queue_depth() const { return queue_.depth(); }

  /// Live JSON snapshot of the farm (DESIGN.md §15): per-shard queue
  /// depths and oldest-ticket age, worker states (busy/idle/dead) with
  /// current job and span, inflight / reclaim / quarantine / memo /
  /// result-feed counters, and tracer/recorder totals when armed.
  /// Callable from any thread at any time; touches only atomics and
  /// short leaf locks (never metrics_mu_).
  std::string introspect() const;

  /// Installs (or clears, with an empty function) an external-ingress
  /// introspection provider. When set, introspect() appends its return
  /// value verbatim as the snapshot's "net" object — tmsim-farmd uses
  /// this to surface listener/connection/outbox/spill state in the same
  /// snapshot (and the same periodic file) as the farm internals. The
  /// provider must return a complete JSON value and must not call back
  /// into the farm.
  void set_ingress_provider(std::function<std::string()> provider);

  /// The armed flight recorder, or null (test/diagnostic access).
  const obs::FlightRecorder* flight_recorder() const {
    return recorder_.get();
  }

 private:
  struct CachedEngine {
    std::string key;
    std::unique_ptr<core::SeqNocSimulation> sim;
    std::uint64_t last_used = 0;
  };
  struct Worker {
    std::thread thread;
    std::vector<CachedEngine> cache;
    std::uint64_t cache_clock = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    double busy_us = 0.0;
    // Per-stage pipeline accounting (worker-thread-private while the
    // worker lives; read by shutdown after the join). busy_us is the
    // "run" stage; these three complete the breakdown the throughput
    // bench emits as farm.stage.*_us.
    double queue_wait_us = 0.0;  ///< enqueue → pop, summed over jobs
    double attach_us = 0.0;      ///< session build + engine attach/restore
    double publish_us = 0.0;     ///< terminal arbitration + result store
    std::uint64_t batches = 0;       ///< multi-job pops
    std::uint64_t batched_jobs = 0;  ///< jobs arriving in multi-job pops
    /// Cached ref to this worker's farm.worker.slices row, so the
    /// per-slice hot path skips the registry's registration mutex.
    obs::Counter* slices_counter = nullptr;

    // Supervision surface. heartbeat/idle are written by the worker
    // thread and read by the supervisor; kill/dead flags flow the other
    // way. `dead` is the release-store the supervisor acquires before
    // joining the thread and touching anything else.
    std::atomic<std::uint64_t> heartbeat{0};
    std::atomic<bool> idle{false};
    std::atomic<bool> kill_requested{false};
    std::atomic<bool> lose_session{false};
    std::atomic<bool> dead{false};
    std::atomic<std::uint64_t> current_job{0};
    /// Currently open farm.exec span id (0 when idle) — surfaced by
    /// introspect() so a stuck worker names the span it is stuck in.
    std::atomic<std::uint64_t> current_span{0};
    std::optional<QueuedJob> orphan;      ///< guarded by farm_mu_
    // Supervisor-private heartbeat bookkeeping (single-threaded: the
    // supervisor, then — after it is joined — shutdown).
    std::uint64_t last_beat = 0;
    std::size_t missed_scans = 0;
  };
  /// Per-job control block, created at admission, erased at publish.
  struct JobControl {
    std::shared_ptr<std::atomic<bool>> cancel =
        std::make_shared<std::atomic<bool>>(false);
    CancelCause cause = CancelCause::kNone;
    bool terminal = false;     ///< a publisher won; suppress any other
    double deadline_at_us = 0.0;
  };
  /// Control blocks are sharded by job id so submit / cancel / publish
  /// for different jobs never contend (DESIGN.md §14).
  struct ControlShard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, JobControl> map;
  };
  static constexpr std::size_t kControlShards = 8;

  void worker_main(std::size_t w);
  /// Gives batch[from..) back to the *front* of its class, in original
  /// order (kill / higher-priority-arrived mid-batch).
  void requeue_batch_tail(std::vector<QueuedJob>& batch, std::size_t from);
  /// One scheduling turn: run quanta of `job` until it finishes, fails,
  /// is cancelled, or gets preempted/retried (then it is requeued
  /// internally). Returns false when the worker was killed and must
  /// exit (the job, if any, sits in its orphan slot).
  bool run_job(std::size_t w, QueuedJob job);
  /// Terminal-or-retry decision for a failed execution. Returns true
  /// (the worker always survives a job failure).
  bool finish_failure(std::size_t w, QueuedJob& job, FailureKind kind,
                      const std::string& message);
  core::SeqNocSimulation& acquire_engine(std::size_t w, const JobSpec& spec);
  /// Publishes `r` for `job` unless another publisher already marked the
  /// job terminal. Fills identity, checkpoint provenance, and the
  /// scheduling record; finalizes session stats for kDone and
  /// fault-abort failures.
  void publish(std::size_t w, QueuedJob& job, JobResult r);
  void publish_cancelled(std::size_t w, QueuedJob& job, CancelCause cause);
  double retry_backoff_us(const JobSpec& spec, std::size_t attempt) const;
  /// Tracing helpers (DESIGN.md §15): one farm.exec segment span per
  /// dispatch, opened before the memo check and closed — with its
  /// outcome — on *every* exit path, so worker death never leaves an
  /// unclosed span. No-ops without a tracer / for unsampled jobs.
  void open_exec_span(std::size_t w, QueuedJob& job);
  void close_exec_span(std::size_t w, QueuedJob& job, const char* outcome);
  /// Appends a flight-recorder event to ring `ring` (no-op when the
  /// recorder is off). Ring workers_.size() belongs to the
  /// supervisor/shutdown paths.
  void flight(std::size_t ring, const QueuedJob& job,
              obs::FlightEventKind kind, std::uint64_t a, std::uint64_t b);
  void introspector_main();
  void write_introspect_file() const;
  ControlShard& control_shard(std::uint64_t job_id) {
    return control_[job_id % kControlShards];
  }
  const ControlShard& control_shard(std::uint64_t job_id) const {
    return control_[job_id % kControlShards];
  }
  /// Memo cache (memo_capacity > 0): LRU of kDone results keyed by
  /// JobSpec::fingerprint(). Lookup refreshes recency and returns a copy.
  std::optional<JobResult> memo_lookup(std::uint64_t fingerprint);
  void memo_store(std::uint64_t fingerprint, const JobResult& r);
  void supervisor_main();
  void supervisor_scan();
  /// Joins dead workers, requeues their orphans (front of class), and —
  /// when allowed — respawns replacements. Supervisor thread or, once
  /// the supervisor is joined, shutdown.
  void reclaim_dead_workers(bool allow_respawn);
  double now_us() const;
  void update_queue_gauges();

  FarmOptions opt_;
  AdmissionQueue queue_;
  ResultStore results_;
  std::vector<std::unique_ptr<Worker>> workers_;

  // Lock map (DESIGN.md §14). No lock is global to the hot path:
  //   - control_[i].mu  — one control shard (submit/cancel/publish of the
  //     jobs hashing there);
  //   - farm_mu_        — cold paths only: quarantine_, reclaims_, orphan
  //     slots;
  //   - metrics_mu_     — leaf mutex serializing writers of *shared*
  //     farm.* instruments (obs instruments are single-writer by
  //     contract; per-worker-labelled rows need no lock);
  //   - drain_mu_       — pairs with idle_cv_ for drain(); inflight_
  //     itself is atomic;
  //   - memo_mu_        — the memo LRU.
  // Leaf order: any of the above may be taken with metrics_mu_ nested
  // inside; no other nesting is used.
  mutable std::mutex farm_mu_;
  mutable std::mutex metrics_mu_;
  mutable std::mutex drain_mu_;
  std::condition_variable idle_cv_;
  std::atomic<std::size_t> inflight_{0};  ///< accepted, not yet published
  std::atomic<bool> stopping_{false};
  std::array<ControlShard, kControlShards> control_;
  std::vector<QuarantineRecord> quarantine_;
  std::uint64_t reclaims_ = 0;  ///< guarded by farm_mu_

  // Spec-fingerprint memoization (memo_capacity > 0). The list holds
  // entries most-recent-first; the map points into it.
  struct MemoEntry {
    std::uint64_t fingerprint = 0;
    JobResult result;
  };
  mutable std::mutex memo_mu_;
  std::list<MemoEntry> memo_lru_;
  std::unordered_map<std::uint64_t, std::list<MemoEntry>::iterator> memo_map_;
  std::uint64_t memo_hits_ = 0;       ///< guarded by memo_mu_
  std::uint64_t memo_misses_ = 0;     ///< guarded by memo_mu_
  std::uint64_t memo_inserts_ = 0;    ///< guarded by memo_mu_
  std::uint64_t memo_evictions_ = 0;  ///< guarded by memo_mu_

  std::thread supervisor_;
  std::mutex sup_mu_;
  std::condition_variable sup_cv_;
  bool sup_stop_ = false;

  // External-ingress introspection provider (tmsim-farmd). Guarded by
  // its own leaf mutex so introspect() stays callable from any thread.
  mutable std::mutex ingress_mu_;
  std::function<std::string()> ingress_provider_;

  // Flight recorder (flight_recorder_depth > 0) and the periodic
  // introspection snapshot thread (introspect_interval_ms > 0).
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::thread introspector_;
  std::mutex intro_mu_;
  std::condition_variable intro_cv_;
  bool intro_stop_ = false;
};

}  // namespace tmsim::farm
