// SimFarm: a multi-tenant batch simulation service over the engines —
// many queued JobSpecs, a fixed pool of worker threads, each worker
// owning a small cache of reusable engine instances, results landing in
// a thread-safe ResultStore.
//
// Scheduling model (DESIGN.md §11):
//   - admission through a bounded priority queue (AdmissionQueue) that
//     rejects with a structured reason instead of ever blocking a
//     submitter;
//   - workers run a job in quanta of `preempt_quantum` system cycles;
//     between quanta they poll for waiting higher-priority work and, if
//     any, *preempt*: checkpoint the session (EngineCheckpoint /
//     ArmHost slicing), requeue it at the front of its class, and pick
//     up the urgent job — possibly on a different worker's engine;
//   - the whole dance is invisible in the results: a job preempted N
//     times across M workers returns bit-identical summaries, fault
//     reports, and state digests to a standalone run
//     (tests/farm/farm_determinism_test.cpp enforces this over
//     randomized specs).
//
// Observability (all optional, null = zero overhead):
//   farm.admission.{submitted,accepted,rejected} (+ per-reason labels),
//   farm.queue.depth{class=...} gauges, farm.jobs.{completed,failed},
//   farm.{preemptions,resumes,checkpoints}, per-worker
//   farm.worker.{slices,jobs,busy_us}{worker=i} counters and a
//   farm.worker.utilization gauge at shutdown; plus farm.slice spans on
//   per-worker ChromeTrace tracks (tid 100+worker) with farm.preempt
//   instants.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "farm/admission.h"
#include "farm/result_store.h"
#include "farm/session.h"

namespace tmsim::obs {
class ChromeTrace;
class MetricsRegistry;
}  // namespace tmsim::obs

namespace tmsim::farm {

struct FarmOptions {
  std::size_t num_workers = 2;
  /// Fresh submissions queued at once before kQueueFull backpressure.
  std::size_t queue_capacity = 64;
  /// System cycles per slice; preemption is only checked at slice
  /// boundaries, so this is the preemption latency in simulated cycles.
  SystemCycle preempt_quantum = 256;
  /// Per-job cycle ceiling (admission rejects above it with kTooLarge).
  SystemCycle max_job_cycles = 10'000'000;
  /// Engines a worker keeps warm, LRU-evicted (keyed by topology +
  /// engine options with the canonical schedule seed).
  std::size_t engine_cache_per_worker = 2;
  /// Completion-feed depth of the ResultStore.
  std::size_t completion_feed_depth = 64;
  /// Test knobs: force_preempt requeues after *every* quantum even with
  /// no higher-priority work waiting (maximally exercises the
  /// checkpoint/resume path); paranoid_resume re-verifies cycle and
  /// state digest after every restore.
  bool force_preempt = false;
  bool paranoid_resume = false;
  /// Observability sinks (borrowed; must outlive the farm).
  obs::MetricsRegistry* metrics = nullptr;
  obs::ChromeTrace* timeline = nullptr;
};

class SimFarm {
 public:
  explicit SimFarm(FarmOptions opt = {});
  /// Shuts down (drains queued and in-flight jobs, joins workers).
  ~SimFarm();

  SimFarm(const SimFarm&) = delete;
  SimFarm& operator=(const SimFarm&) = delete;

  /// Never blocks: either the job is queued (outcome.job_id) or the
  /// outcome says why not.
  SubmitOutcome submit(const JobSpec& spec);

  /// Blocks until the job's result is published.
  JobResult wait(std::uint64_t job_id) { return results_.wait(job_id); }

  /// Blocks until every accepted job has a published result.
  void drain();

  /// Stops intake, drains queued + in-flight work, joins the workers.
  /// Idempotent. Publishes the end-of-life farm.worker.utilization
  /// gauges.
  void shutdown();

  const ResultStore& results() const { return results_; }
  ResultStore& results() { return results_; }
  const FarmOptions& options() const { return opt_; }
  std::size_t queue_depth() const { return queue_.depth(); }

 private:
  struct CachedEngine {
    std::string key;
    std::unique_ptr<core::SeqNocSimulation> sim;
    std::uint64_t last_used = 0;
  };
  struct Worker {
    std::thread thread;
    std::vector<CachedEngine> cache;
    std::uint64_t cache_clock = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    double busy_us = 0.0;
  };

  void worker_main(std::size_t w);
  /// One scheduling turn: run quanta of `job` until it finishes or gets
  /// preempted (then it is requeued internally).
  void run_job(std::size_t w, QueuedJob job);
  core::SeqNocSimulation& acquire_engine(std::size_t w, const JobSpec& spec);
  void publish(std::size_t w, QueuedJob& job, JobStatus status,
               const std::string& error);
  double now_us() const;
  void update_queue_gauges();

  FarmOptions opt_;
  AdmissionQueue queue_;
  ResultStore results_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex farm_mu_;  ///< guards inflight_ and the shared farm.* counters
  std::condition_variable idle_cv_;
  std::size_t inflight_ = 0;  ///< accepted but not yet published
  bool stopping_ = false;
};

}  // namespace tmsim::farm
