#include "farm/job_spec.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "traffic/workloads.h"

namespace tmsim::farm {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

double parse_double(const std::string& v) {
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  TMSIM_CHECK_MSG(end && *end == '\0', "malformed double in job spec");
  return d;
}

std::uint64_t parse_u64(const std::string& v) {
  char* end = nullptr;
  const unsigned long long u = std::strtoull(v.c_str(), &end, 10);
  TMSIM_CHECK_MSG(end && *end == '\0' && !v.empty(),
                  "malformed integer in job spec");
  return u;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

const char* topology_name(noc::Topology t) {
  return t == noc::Topology::kTorus ? "torus" : "mesh";
}

const char* policy_name(core::SchedulePolicy p) {
  switch (p) {
    case core::SchedulePolicy::kStatic: return "static";
    case core::SchedulePolicy::kDynamic: return "dynamic";
    case core::SchedulePolicy::kTwoPhaseOracle: return "two_phase";
  }
  return "?";
}

const char* partition_name(core::PartitionPolicy p) {
  switch (p) {
    case core::PartitionPolicy::kRoundRobin: return "round_robin";
    case core::PartitionPolicy::kContiguous: return "contiguous";
    case core::PartitionPolicy::kMinCutGreedy: return "min_cut";
  }
  return "?";
}

}  // namespace

const char* job_kind_name(JobKind k) {
  return k == JobKind::kCoreTraffic ? "core" : "hosted";
}

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kInteractive: return "interactive";
    case Priority::kNormal: return "normal";
    case Priority::kBatch: return "batch";
  }
  return "?";
}

std::string JobSpec::serialize() const {
  std::ostringstream os;
  // Format-version token first, always: decoders on the far side of the
  // wire (or a future release) must be able to reject a spec they do
  // not understand before trusting any other token.
  os << "v=" << kSpecFormatVersion;
  os << " name=" << name;
  os << " kind=" << job_kind_name(kind);
  os << " priority=" << priority_name(priority);
  os << " width=" << net.width << " height=" << net.height;
  os << " topology=" << topology_name(net.topology);
  os << " vcs=" << net.router.num_vcs << " qdepth=" << net.router.queue_depth;
  os << " policy=" << policy_name(engine.policy);
  os << " shards=" << engine.num_shards;
  os << " partition=" << partition_name(engine.partition);
  os << " engine_seed=" << engine.seed;
  os << " scheduler=" << core::scheduler_kind_name(engine.scheduler);
  os << " be_load=" << fmt_double(workload.be_load);
  os << " be_vcs=";
  for (std::size_t i = 0; i < workload.be_vcs.size(); ++i) {
    os << (i ? "," : "") << workload.be_vcs[i];
  }
  os << " be_bytes=" << workload.be_bytes;
  os << " fig1_gt=" << (workload.fig1_gt ? 1 : 0);
  os << " gt_period=" << workload.gt_period;
  os << " gt=";
  for (std::size_t i = 0; i < workload.gt_streams.size(); ++i) {
    const traffic::GtStream& s = workload.gt_streams[i];
    os << (i ? ";" : "") << s.src << ":" << s.dst << ":" << s.vc << ":"
       << s.period << ":" << s.phase << ":" << s.bytes;
  }
  os << " warmup=" << workload.warmup_cycles;
  os << " verify_payload=" << (workload.verify_payload ? 1 : 0);
  os << " stop_on_overload=" << (workload.stop_on_overload ? 1 : 0);
  os << " overload_threshold=" << workload.overload_threshold;
  os << " seed=" << seed;
  os << " cycles=" << cycles;
  os << " deadline_ms=" << deadline_ms;
  os << " max_retries=" << max_retries;
  os << " f_read_flip=" << fmt_double(faults.read_flip);
  os << " f_write_flip=" << fmt_double(faults.write_flip);
  os << " f_dropped_write=" << fmt_double(faults.dropped_write);
  os << " f_stuck_busy=" << fmt_double(faults.stuck_busy);
  os << " f_spurious_overrun=" << fmt_double(faults.spurious_overrun);
  os << " f_stuck_busy_reads=" << faults.stuck_busy_reads;
  return os.str();
}

JobSpec JobSpec::deserialize(const std::string& text) {
  JobSpec spec;
  // Every list-valued key starts empty; scalar keys keep their defaults
  // only if the token is absent (serialize() always emits all keys, but
  // hand-written specs may omit some).
  spec.workload.be_vcs.clear();
  std::istringstream is(text);
  std::string tok;
  while (is >> tok) {
    const std::size_t eq = tok.find('=');
    TMSIM_CHECK_MSG(eq != std::string::npos, "job spec token without '='");
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (key == "v") {
      // Absent `v` means version 1 (pre-versioning specs); any other
      // version is a structured reject, never a best-effort parse.
      if (parse_u64(val) != kSpecFormatVersion) {
        throw ContextualError("unsupported job spec format version",
                              {{"v", val}});
      }
    } else if (key == "name") {
      spec.name = val;
    } else if (key == "kind") {
      if (val == "core") {
        spec.kind = JobKind::kCoreTraffic;
      } else if (val == "hosted") {
        spec.kind = JobKind::kHostedFpga;
      } else {
        throw ContextualError("unknown job kind", {{"kind", val}});
      }
    } else if (key == "priority") {
      if (val == "interactive") {
        spec.priority = Priority::kInteractive;
      } else if (val == "normal") {
        spec.priority = Priority::kNormal;
      } else if (val == "batch") {
        spec.priority = Priority::kBatch;
      } else {
        throw ContextualError("unknown priority", {{"priority", val}});
      }
    } else if (key == "width") {
      spec.net.width = parse_u64(val);
    } else if (key == "height") {
      spec.net.height = parse_u64(val);
    } else if (key == "topology") {
      if (val == "torus") {
        spec.net.topology = noc::Topology::kTorus;
      } else if (val == "mesh") {
        spec.net.topology = noc::Topology::kMesh;
      } else {
        throw ContextualError("unknown topology", {{"topology", val}});
      }
    } else if (key == "vcs") {
      spec.net.router.num_vcs = parse_u64(val);
    } else if (key == "qdepth") {
      spec.net.router.queue_depth = parse_u64(val);
    } else if (key == "policy") {
      if (val == "static") {
        spec.engine.policy = core::SchedulePolicy::kStatic;
      } else if (val == "dynamic") {
        spec.engine.policy = core::SchedulePolicy::kDynamic;
      } else if (val == "two_phase") {
        spec.engine.policy = core::SchedulePolicy::kTwoPhaseOracle;
      } else {
        throw ContextualError("unknown schedule policy", {{"policy", val}});
      }
    } else if (key == "shards") {
      spec.engine.num_shards = parse_u64(val);
    } else if (key == "partition") {
      if (val == "round_robin") {
        spec.engine.partition = core::PartitionPolicy::kRoundRobin;
      } else if (val == "contiguous") {
        spec.engine.partition = core::PartitionPolicy::kContiguous;
      } else if (val == "min_cut") {
        spec.engine.partition = core::PartitionPolicy::kMinCutGreedy;
      } else {
        throw ContextualError("unknown partition policy", {{"partition", val}});
      }
    } else if (key == "engine_seed") {
      spec.engine.seed = parse_u64(val);
    } else if (key == "scheduler") {
      if (val == "round_robin") {
        spec.engine.scheduler = core::SchedulerKind::kRoundRobin;
      } else if (val == "worklist") {
        spec.engine.scheduler = core::SchedulerKind::kWorklist;
      } else if (val == "compiled") {
        spec.engine.scheduler = core::SchedulerKind::kCompiled;
      } else {
        throw ContextualError("unknown scheduler kind", {{"scheduler", val}});
      }
    } else if (key == "be_load") {
      spec.workload.be_load = parse_double(val);
    } else if (key == "be_vcs") {
      for (const std::string& v : split(val, ',')) {
        spec.workload.be_vcs.push_back(
            static_cast<unsigned>(parse_u64(v)));
      }
    } else if (key == "be_bytes") {
      spec.workload.be_bytes = parse_u64(val);
    } else if (key == "fig1_gt") {
      spec.workload.fig1_gt = parse_u64(val) != 0;
    } else if (key == "gt_period") {
      spec.workload.gt_period = parse_u64(val);
    } else if (key == "gt") {
      for (const std::string& entry : split(val, ';')) {
        const std::vector<std::string> f = split(entry, ':');
        TMSIM_CHECK_MSG(f.size() == 6, "GT stream needs 6 fields");
        traffic::GtStream s;
        s.src = parse_u64(f[0]);
        s.dst = parse_u64(f[1]);
        s.vc = static_cast<unsigned>(parse_u64(f[2]));
        s.period = parse_u64(f[3]);
        s.phase = parse_u64(f[4]);
        s.bytes = parse_u64(f[5]);
        spec.workload.gt_streams.push_back(s);
      }
    } else if (key == "warmup") {
      spec.workload.warmup_cycles = parse_u64(val);
    } else if (key == "verify_payload") {
      spec.workload.verify_payload = parse_u64(val) != 0;
    } else if (key == "stop_on_overload") {
      spec.workload.stop_on_overload = parse_u64(val) != 0;
    } else if (key == "overload_threshold") {
      spec.workload.overload_threshold = parse_u64(val);
    } else if (key == "seed") {
      spec.seed = parse_u64(val);
    } else if (key == "cycles") {
      spec.cycles = parse_u64(val);
    } else if (key == "deadline_ms") {
      spec.deadline_ms = parse_u64(val);
    } else if (key == "max_retries") {
      spec.max_retries = static_cast<std::uint32_t>(parse_u64(val));
    } else if (key == "f_read_flip") {
      spec.faults.read_flip = parse_double(val);
    } else if (key == "f_write_flip") {
      spec.faults.write_flip = parse_double(val);
    } else if (key == "f_dropped_write") {
      spec.faults.dropped_write = parse_double(val);
    } else if (key == "f_stuck_busy") {
      spec.faults.stuck_busy = parse_double(val);
    } else if (key == "f_spurious_overrun") {
      spec.faults.spurious_overrun = parse_double(val);
    } else if (key == "f_stuck_busy_reads") {
      spec.faults.stuck_busy_reads = parse_u64(val);
    } else {
      throw ContextualError("unknown job spec key", {{"key", key}});
    }
  }
  return spec;
}

std::uint64_t JobSpec::fingerprint() const {
  const std::string s = serialize();
  return fnv1a(kFnvOffset, s.data(), s.size());
}

std::vector<traffic::GtStream> JobSpec::resolved_gt_streams() const {
  if (workload.fig1_gt) {
    return traffic::fig1_gt_streams(net, workload.gt_period);
  }
  return workload.gt_streams;
}

void JobSpec::validate() const {
  TMSIM_CHECK_MSG(!name.empty(), "job name must not be empty");
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '_' || c == '-')) {
      throw ContextualError("job name contains a character outside "
                            "[A-Za-z0-9._-]",
                            {{"name", name}});
    }
  }
  net.validate();
  TMSIM_CHECK_MSG(cycles >= 1, "job must simulate at least one cycle");
  TMSIM_CHECK_MSG(max_retries <= 64,
                  "max_retries above 64 is a crash-loop, not a retry policy");
  TMSIM_CHECK_MSG(!(workload.fig1_gt && !workload.gt_streams.empty()),
                  "fig1_gt and explicit gt_streams are mutually exclusive");
  if (workload.be_load > 0.0) {
    TMSIM_CHECK_MSG(workload.be_load <= 1.0, "be_load must be in [0,1]");
    TMSIM_CHECK_MSG(!workload.be_vcs.empty(),
                    "BE traffic needs at least one VC");
  }
  const std::vector<traffic::GtStream> streams = resolved_gt_streams();
  if (!streams.empty()) {
    traffic::TrafficHarness::validate_gt_streams(net, streams);
  }
  if (kind == JobKind::kHostedFpga) {
    // The hosted stack (ArmHost ↔ FpgaDesign) has no warmup window and
    // verifies payloads through its own tag machinery; rejecting these
    // here turns a silent semantic mismatch into a structured reject.
    TMSIM_CHECK_MSG(workload.warmup_cycles == 0,
                    "hosted jobs do not support warmup_cycles");
    TMSIM_CHECK_MSG(!workload.verify_payload,
                    "hosted jobs do not support verify_payload");
  } else {
    const double fault_sum = faults.read_flip + faults.write_flip +
                             faults.dropped_write + faults.stuck_busy +
                             faults.spurious_overrun;
    TMSIM_CHECK_MSG(fault_sum == 0.0,
                    "bus fault injection requires a hosted job (there is "
                    "no bus on the core-traffic path)");
  }
}

std::uint64_t derive_seed(std::uint64_t base, std::string_view domain) {
  std::uint64_t h = kFnvOffset;
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(base >> (8 * i));
  }
  h = fnv1a(h, bytes, sizeof bytes);
  h = fnv1a(h, domain.data(), domain.size());
  return h == 0 ? kFnvOffset : h;
}

}  // namespace tmsim::farm
