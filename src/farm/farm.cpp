#include "farm/farm.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tmsim::farm {

namespace {

std::string worker_label(std::size_t w) {
  return "worker=" + std::to_string(w);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string hex_id(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* cancel_result_name(CancelResult r) {
  switch (r) {
    case CancelResult::kUnknownJob: return "unknown_job";
    case CancelResult::kAlreadyFinished: return "already_finished";
    case CancelResult::kRequested: return "requested";
  }
  return "?";
}

SimFarm::SimFarm(FarmOptions opt)
    : opt_(opt),
      queue_(opt.queue_capacity, opt.max_job_cycles,
             [this] { return now_us(); }, opt.admission_shards,
             // Batch compatibility = engine-cache identity: the queue
             // only hands out multi-job batches that can share one warm
             // engine without re-attach.
             [](const JobSpec& spec) { return engine_cache_key_hash(spec); },
             opt.tracer),
      results_(opt.completion_feed_depth) {
  TMSIM_CHECK_MSG(opt_.num_workers >= 1, "farm needs at least one worker");
  TMSIM_CHECK_MSG(opt_.preempt_quantum >= 1, "quantum must be positive");
  for (std::size_t w = 0; w < opt_.num_workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  if (opt_.flight_recorder_depth > 0) {
    // One ring per worker plus one for the supervisor/shutdown paths.
    recorder_ = std::make_unique<obs::FlightRecorder>(
        opt_.num_workers + 1, opt_.flight_recorder_depth);
  }
  if (opt_.timeline) {
    for (std::size_t w = 0; w < opt_.num_workers; ++w) {
      opt_.timeline->name_thread(static_cast<std::uint32_t>(100 + w),
                                 "farm.worker" + std::to_string(w));
    }
  }
  for (std::size_t w = 0; w < opt_.num_workers; ++w) {
    workers_[w]->thread = std::thread([this, w] { worker_main(w); });
  }
  if (opt_.supervisor_interval_ms > 0.0) {
    supervisor_ = std::thread([this] { supervisor_main(); });
  }
  if (opt_.introspect_interval_ms > 0.0) {
    introspector_ = std::thread([this] { introspector_main(); });
  }
}

SimFarm::~SimFarm() { shutdown(); }

double SimFarm::now_us() const {
  if (opt_.timeline) {
    return opt_.timeline->now_us();
  }
  return static_cast<double>(steady_now_ns()) * 1e-3;
}

void SimFarm::update_queue_gauges() {
  // Gauges are refreshed at supervisor cadence and at shutdown, not on
  // every submit/publish — a point-in-time depth does not need (and the
  // sharded hot path does not pay for) per-event precision.
  if (!opt_.metrics) {
    return;
  }
  std::lock_guard<std::mutex> lock(metrics_mu_);
  for (std::size_t c = 0; c < kNumPriorities; ++c) {
    const auto p = static_cast<Priority>(c);
    opt_.metrics->gauge("farm.queue.depth",
                        std::string("class=") + priority_name(p))
        .set(static_cast<double>(queue_.depth(p)));
  }
}

SubmitOutcome SimFarm::submit(const JobSpec& spec,
                              const obs::TraceContext* remote) {
  SubmitOutcome out;
  const double now = now_us();
  if (stopping_.load(std::memory_order_acquire)) {
    out.reason = RejectReason::kStopped;
    out.detail = "farm is shutting down";
  } else {
    // The accept hook installs the control record after the job id is
    // assigned and *before* the job becomes poppable, so a worker can
    // never see a control-less job — the old TOCTOU fix, without
    // holding any farm-wide lock across the enqueue.
    out = queue_.submit(spec, now,
                        [this, now](std::uint64_t id, const JobSpec& s) {
                          inflight_.fetch_add(1, std::memory_order_relaxed);
                          JobControl ctl;
                          if (s.deadline_ms > 0) {
                            ctl.deadline_at_us =
                                now + static_cast<double>(s.deadline_ms) * 1e3;
                          }
                          ControlShard& shard = control_shard(id);
                          std::lock_guard<std::mutex> lock(shard.mu);
                          shard.map.emplace(id, std::move(ctl));
                        },
                        remote);
  }
  if (opt_.metrics) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    opt_.metrics->counter("farm.admission.submitted").add();
    if (out.accepted) {
      opt_.metrics->counter("farm.admission.accepted").add();
    } else {
      opt_.metrics->counter("farm.admission.rejected").add();
      opt_.metrics
          ->counter("farm.admission.rejected",
                    std::string("reason=") + reject_reason_name(out.reason))
          .add();
    }
  }
  return out;
}

CancelResult SimFarm::cancel(std::uint64_t job_id) {
  ControlShard& shard = control_shard(job_id);
  bool requested = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(job_id);
    if (it != shard.map.end()) {
      if (it->second.terminal) {
        return CancelResult::kAlreadyFinished;
      }
      if (it->second.cause == CancelCause::kNone) {
        it->second.cause = CancelCause::kUser;
      }
      it->second.cancel->store(true, std::memory_order_relaxed);
      requested = true;
    }
  }
  if (!requested) {
    // Control blocks live from admission to publish: absent + published
    // means finished, absent + unpublished means never ours.
    return results_.get(job_id) ? CancelResult::kAlreadyFinished
                                : CancelResult::kUnknownJob;
  }
  if (opt_.metrics) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    opt_.metrics->counter("farm.cancellations.requested").add();
  }
  return CancelResult::kRequested;
}

void SimFarm::kill_worker(std::size_t w, bool lose_session) {
  TMSIM_CHECK_MSG(w < workers_.size(), "no such worker");
  if (lose_session) {
    workers_[w]->lose_session.store(true, std::memory_order_relaxed);
  }
  workers_[w]->kill_requested.store(true, std::memory_order_relaxed);
}

std::vector<QuarantineRecord> SimFarm::quarantined() const {
  std::lock_guard<std::mutex> lock(farm_mu_);
  return quarantine_;
}

std::uint64_t SimFarm::jobs_reclaimed() const {
  std::lock_guard<std::mutex> lock(farm_mu_);
  return reclaims_;
}

void SimFarm::drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  idle_cv_.wait(
      lock, [&] { return inflight_.load(std::memory_order_acquire) == 0; });
}

std::optional<JobResult> SimFarm::memo_lookup(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(memo_mu_);
  const auto it = memo_map_.find(fingerprint);
  if (it == memo_map_.end()) {
    ++memo_misses_;
    return std::nullopt;
  }
  memo_lru_.splice(memo_lru_.begin(), memo_lru_, it->second);
  ++memo_hits_;
  return it->second->result;
}

void SimFarm::memo_store(std::uint64_t fingerprint, const JobResult& r) {
  std::lock_guard<std::mutex> lock(memo_mu_);
  if (memo_map_.contains(fingerprint)) {
    return;  // concurrent duplicate runs: first insert wins, both valid
  }
  MemoEntry entry;
  entry.fingerprint = fingerprint;
  entry.result = r;
  // Only the simulation-visible surface is memo material; the original
  // run's scheduling record is scrubbed so a served copy carries its own.
  entry.result.memo_hit = false;
  entry.result.preemptions = 0;
  entry.result.slices = 0;
  entry.result.last_worker = 0;
  entry.result.queue_seconds = 0.0;
  entry.result.exec_seconds = 0.0;
  entry.result.turnaround_seconds = 0.0;
  entry.result.failure.last_checkpoint_cycle = 0;
  entry.result.failure.last_checkpoint_digest = 0;
  memo_lru_.push_front(std::move(entry));
  memo_map_.emplace(fingerprint, memo_lru_.begin());
  ++memo_inserts_;
  while (memo_lru_.size() > opt_.memo_capacity) {
    memo_map_.erase(memo_lru_.back().fingerprint);
    memo_lru_.pop_back();
    ++memo_evictions_;
  }
}

void SimFarm::shutdown() {
  stopping_.store(true, std::memory_order_release);
  // 0. Stop the periodic introspector (it only reads, but joining it
  //    here keeps the rest of shutdown single-minded).
  if (introspector_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(intro_mu_);
      intro_stop_ = true;
    }
    intro_cv_.notify_all();
    introspector_.join();
  }
  // 1. Stop the supervisor first: below this line nothing reclaims or
  //    respawns concurrently, so the joins are race-free.
  if (supervisor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(sup_mu_);
      sup_stop_ = true;
    }
    sup_cv_.notify_all();
    supervisor_.join();
  }
  // 2. Final reclaim pass: dead workers' orphans go back on the queue,
  //    and replacements are spawned so the backlog still has someone to
  //    run it even if the whole pool was killed.
  reclaim_dead_workers(/*allow_respawn=*/true);
  // 3. Drain: stop intake; workers run the backlog dry (including jobs
  //    still sleeping out a retry backoff), then exit.
  queue_.stop();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
  // 4. No job left behind: a worker killed *during* the drain leaves an
  //    orphan with nobody to reclaim it, and a fully-killed pool leaves
  //    queued jobs unpopped. Resolve both as kCancelled (supervisor
  //    cause) so every accepted job still gets exactly one result.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    std::optional<QueuedJob> orphan;
    {
      std::lock_guard<std::mutex> lock(farm_mu_);
      orphan.swap(workers_[w]->orphan);
    }
    if (orphan) {
      publish_cancelled(w, *orphan, CancelCause::kSupervisor);
    }
  }
  while (std::optional<QueuedJob> job = queue_.pop_blocking()) {
    publish_cancelled(0, *job, CancelCause::kSupervisor);
  }
  update_queue_gauges();
  if (opt_.introspect_interval_ms > 0.0) {
    write_introspect_file();  // final end-of-life snapshot
  }
  // 5. End-of-life instruments (all worker threads joined above, so the
  //    per-worker rows have a single writer: this thread).
  const double end_us = now_us();
  if (opt_.metrics && end_us > 0.0) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const Worker& wk = *workers_[w];
      opt_.metrics->gauge("farm.worker.utilization", worker_label(w))
          .set(wk.busy_us / end_us);
      opt_.metrics->counter("farm.worker.busy_us", worker_label(w))
          .set(static_cast<std::uint64_t>(wk.busy_us));
      opt_.metrics->counter("farm.worker.cache_hits", worker_label(w))
          .set(wk.cache_hits);
      opt_.metrics->counter("farm.worker.cache_misses", worker_label(w))
          .set(wk.cache_misses);
      // Pipeline-stage breakdown (queue-wait / attach / run / publish) —
      // the throughput bench sums these across workers.
      opt_.metrics->counter("farm.stage.queue_wait_us", worker_label(w))
          .set(static_cast<std::uint64_t>(wk.queue_wait_us));
      opt_.metrics->counter("farm.stage.attach_us", worker_label(w))
          .set(static_cast<std::uint64_t>(wk.attach_us));
      opt_.metrics->counter("farm.stage.run_us", worker_label(w))
          .set(static_cast<std::uint64_t>(wk.busy_us));
      opt_.metrics->counter("farm.stage.publish_us", worker_label(w))
          .set(static_cast<std::uint64_t>(wk.publish_us));
      opt_.metrics->counter("farm.batch.batches", worker_label(w))
          .set(wk.batches);
      opt_.metrics->counter("farm.batch.batched_jobs", worker_label(w))
          .set(wk.batched_jobs);
    }
    std::lock_guard<std::mutex> memo_lock(memo_mu_);
    opt_.metrics->counter("farm.memo.hits").set(memo_hits_);
    opt_.metrics->counter("farm.memo.misses").set(memo_misses_);
    opt_.metrics->counter("farm.memo.inserts").set(memo_inserts_);
    opt_.metrics->counter("farm.memo.evictions").set(memo_evictions_);
    opt_.metrics->gauge("farm.memo.size")
        .set(static_cast<double>(memo_lru_.size()));
  }
}

void SimFarm::requeue_batch_tail(std::vector<QueuedJob>& batch,
                                 std::size_t from) {
  // Front tickets count *down*, so requeuing in reverse order leaves the
  // tail at the front of its class in its original relative order.
  const double now = now_us();
  for (std::size_t k = batch.size(); k > from; --k) {
    queue_.requeue(std::move(batch[k - 1]), now, RequeuePosition::kFront);
  }
}

void SimFarm::worker_main(std::size_t w) {
  Worker& worker = *workers_[w];
  const std::size_t max_batch = std::max<std::size_t>(1, opt_.batch_max_jobs);
  for (;;) {
    worker.idle.store(true, std::memory_order_relaxed);
    std::vector<QueuedJob> batch = queue_.pop_batch_blocking(max_batch);
    worker.idle.store(false, std::memory_order_relaxed);
    if (batch.empty()) {
      return;
    }
    worker.heartbeat.fetch_add(1, std::memory_order_relaxed);
    const double popped_us = now_us();
    for (const QueuedJob& job : batch) {
      worker.queue_wait_us += std::max(0.0, popped_us - job.queued_us);
    }
    if (batch.size() > 1) {
      ++worker.batches;
      worker.batched_jobs += batch.size();
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (i > 0 && queue_.has_higher_than(batch[i].spec.priority)) {
        // Urgent work arrived mid-batch: scheduling invisibility beats
        // dispatch amortization — hand the untouched tail back, in
        // order, and let the pop loop serve the higher class first.
        requeue_batch_tail(batch, i);
        break;
      }
      if (!run_job(w, std::move(batch[i]))) {
        // Killed: the orphan slot holds any in-flight job; the untouched
        // tail goes back before the thread exits (the reclaim join is
        // the happens-before edge that makes this visible).
        requeue_batch_tail(batch, i + 1);
        return;
      }
    }
  }
}

core::SeqNocSimulation& SimFarm::acquire_engine(std::size_t w,
                                                const JobSpec& spec) {
  Worker& worker = *workers_[w];
  const std::string key = engine_cache_key(spec);
  for (CachedEngine& e : worker.cache) {
    if (e.key == key) {
      e.last_used = ++worker.cache_clock;
      ++worker.cache_hits;
      return *e.sim;
    }
  }
  ++worker.cache_misses;
  if (worker.cache.size() >= opt_.engine_cache_per_worker &&
      !worker.cache.empty()) {
    std::size_t lru = 0;
    for (std::size_t i = 1; i < worker.cache.size(); ++i) {
      if (worker.cache[i].last_used < worker.cache[lru].last_used) {
        lru = i;
      }
    }
    worker.cache.erase(worker.cache.begin() + static_cast<std::ptrdiff_t>(lru));
  }
  CachedEngine e;
  e.key = key;
  e.sim = std::make_unique<core::SeqNocSimulation>(
      spec.net, effective_engine_options(spec, /*canonical_seed=*/true));
  e.last_used = ++worker.cache_clock;
  worker.cache.push_back(std::move(e));
  return *worker.cache.back().sim;
}

double SimFarm::retry_backoff_us(const JobSpec& spec,
                                 std::size_t attempt) const {
  // Deterministic: exponential in the attempt, jitter a pure function of
  // (spec.seed, attempt) — a replayed failure schedule backs off on the
  // exact same instants.
  const double expo = static_cast<double>(
      1ull << std::min<std::size_t>(attempt > 0 ? attempt - 1 : 0, 10));
  const std::uint64_t h = derive_seed(
      spec.seed ^ (static_cast<std::uint64_t>(attempt) * 0x9e3779b97f4a7c15ull),
      "retry-backoff");
  const double jitter = static_cast<double>(h % 1024) / 1024.0;
  return opt_.retry_backoff_base_us * (expo + jitter);
}

void SimFarm::open_exec_span(std::size_t w, QueuedJob& job) {
  if (opt_.tracer == nullptr || !job.trace.sampled()) {
    return;
  }
  job.exec_span = opt_.tracer->alloc_span_id();
  job.exec_span_start_us = now_us();
  workers_[w]->current_span.store(job.exec_span, std::memory_order_relaxed);
}

void SimFarm::close_exec_span(std::size_t w, QueuedJob& job,
                              const char* outcome) {
  workers_[w]->current_span.store(0, std::memory_order_relaxed);
  if (opt_.tracer == nullptr || !job.trace.sampled() || job.exec_span == 0) {
    return;
  }
  opt_.tracer->span(job.trace, job.exec_span, job.trace.span_id, "farm.exec",
                    static_cast<std::uint32_t>(job.attempts),
                    static_cast<std::uint32_t>(100 + w),
                    job.exec_span_start_us, now_us(),
                    {{"worker", std::to_string(w)}, {"outcome", outcome}});
  job.exec_span = 0;
}

void SimFarm::flight(std::size_t ring, const QueuedJob& job,
                     obs::FlightEventKind kind, std::uint64_t a,
                     std::uint64_t b) {
  if (!recorder_) {
    return;
  }
  obs::FlightEvent e;
  e.ts_us = now_us();
  e.job_id = job.job_id;
  e.trace_id = job.trace.trace_id;
  e.span_id = job.exec_span != 0 ? job.exec_span : job.trace.span_id;
  e.attempt = static_cast<std::uint32_t>(job.attempts);
  e.kind = kind;
  e.a = a;
  e.b = b;
  recorder_->record(ring, e);
}

bool SimFarm::run_job(std::size_t w, QueuedJob job) {
  Worker& worker = *workers_[w];
  const auto tid = static_cast<std::uint32_t>(100 + w);
  const bool resumed = job.session != nullptr;
  std::shared_ptr<std::atomic<bool>> token;
  {
    ControlShard& shard = control_shard(job.job_id);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(job.job_id);
    TMSIM_CHECK_MSG(it != shard.map.end(),
                    "in-flight job without a control record");
    token = it->second.cancel;
  }
  worker.current_job.store(job.job_id, std::memory_order_relaxed);
  // One farm.exec segment per dispatch, opened before the memo check so
  // even memo-served jobs show where they ran; closed with its outcome
  // on every exit path below.
  open_exec_span(w, job);
  flight(w, job, obs::FlightEventKind::kDispatch, job.slices, job.attempts);
  // Memo fast path: only a fresh, never-run attempt may be served from
  // the cache (a resumed or retried job keeps executing), and a cancel
  // or deadline that arrived while queued still wins over a hit.
  if (opt_.memo_capacity > 0 && !job.session && job.slices == 0 &&
      job.attempts <= 1 && !token->load(std::memory_order_relaxed)) {
    const double mnow = now_us();
    if (!(job.deadline_at_us > 0.0 && mnow >= job.deadline_at_us)) {
      if (std::optional<JobResult> hit = memo_lookup(job.spec.fingerprint())) {
        hit->memo_hit = true;
        job.first_us = mnow;
        close_exec_span(w, job, "memo");
        publish(w, job, std::move(*hit));
        return true;
      }
    }
  }
  try {
    const double a0 = now_us();
    if (!job.session) {
      job.session = std::make_shared<SimSession>(job.spec);
    }
    job.session->bind_cancel(token);
    if (job.first_us == 0.0) {
      job.first_us = now_us();
    }
    if (job.session->needs_engine()) {
      job.session->attach(acquire_engine(w, job.spec), opt_.paranoid_resume);
    }
    worker.attach_us += now_us() - a0;
    if (opt_.tracer != nullptr && job.trace.sampled()) {
      opt_.tracer->span(job.trace, opt_.tracer->alloc_span_id(), job.exec_span,
                        "farm.attach", static_cast<std::uint32_t>(job.attempts),
                        tid, a0, now_us(),
                        {{"resumed", resumed ? "1" : "0"}});
    }
    flight(w, job, obs::FlightEventKind::kAttach, resumed ? 1 : 0,
           worker.cache_hits);
    if (resumed && opt_.metrics) {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      opt_.metrics->counter("farm.resumes").add();
    }
    for (;;) {
      worker.heartbeat.fetch_add(1, std::memory_order_relaxed);
      // Terminal checks first, so a cancelled/expired job never burns
      // another slice. Cooperative cancellation (user / deadline-by-
      // supervisor / stuck-escalation):
      if (token->load(std::memory_order_relaxed)) {
        publish_cancelled(w, job, CancelCause::kNone);  // cause from control
        return true;
      }
      // Worker-side deadline check (covers supervisor-less farms).
      if (job.deadline_at_us > 0.0 && now_us() >= job.deadline_at_us) {
        publish_cancelled(w, job, CancelCause::kDeadline);
        return true;
      }
      // Chaos hook (tests/bench): may throw into the failure path or
      // flip this worker's kill flags.
      if (opt_.chaos) {
        ChaosEvent ev;
        ev.worker = w;
        ev.job_id = job.job_id;
        ev.spec = &job.spec;
        ev.attempt = job.attempts;
        ev.slice = job.slices;
        switch (opt_.chaos(ev)) {
          case ChaosAction::kNone:
            break;
          case ChaosAction::kThrowTransient:
            throw TransientError("chaos: injected transient fault");
          case ChaosAction::kThrowPermanent:
            throw Error("chaos: injected permanent fault");
          case ChaosAction::kKillWorkerLoseSession:
            worker.lose_session.store(true, std::memory_order_relaxed);
            [[fallthrough]];
          case ChaosAction::kKillWorker:
            worker.kill_requested.store(true, std::memory_order_relaxed);
            break;
        }
      }
      // Cooperative death, always at a slice boundary (a std::thread
      // cannot be killed mid-slice; the boundary is exactly where the
      // checkpoint contract already proves the state consistent).
      if (worker.kill_requested.load(std::memory_order_relaxed)) {
        const bool lost = worker.lose_session.load(std::memory_order_relaxed);
        if (lost) {
          job.session.reset();  // hard kill: the job restarts from scratch
        } else if (job.session->attached()) {
          job.session->detach();  // graceful: consistent checkpoint survives
        }
        if (opt_.timeline) {
          opt_.timeline->instant("farm.worker.die", now_us(), tid,
                                 {{"job", job.spec.name}});
        }
        flight(w, job, obs::FlightEventKind::kKill, lost ? 1 : 0, 0);
        close_exec_span(w, job, "killed");
        worker.current_job.store(0, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(farm_mu_);
          worker.orphan = std::move(job);
        }
        worker.dead.store(true, std::memory_order_release);
        return false;
      }
      const double t0 = now_us();
      SystemCycle advanced = 0;
      try {
        advanced = job.session->advance(opt_.preempt_quantum);
      } catch (...) {
        // Bill the partial slice: busy_us accounts every slice executed,
        // including the ones that end in a throw.
        const double t1 = now_us();
        worker.busy_us += t1 - t0;
        job.exec_us += t1 - t0;
        ++job.slices;
        throw;
      }
      const double t1 = now_us();
      worker.busy_us += t1 - t0;
      job.exec_us += t1 - t0;
      ++job.slices;
      if (opt_.metrics) {
        if (worker.slices_counter == nullptr) {
          std::lock_guard<std::mutex> lock(metrics_mu_);
          worker.slices_counter =
              &opt_.metrics->counter("farm.worker.slices", worker_label(w));
        }
        worker.slices_counter->add();
      }
      if (opt_.timeline) {
        opt_.timeline->span(
            "farm.slice", t0, t1 - t0, tid,
            {{"job", job.spec.name},
             {"cycles", std::to_string(advanced)}});
      }
      if (opt_.tracer != nullptr && job.trace.sampled()) {
        opt_.tracer->span(
            job.trace, opt_.tracer->alloc_span_id(), job.exec_span,
            "farm.slice", static_cast<std::uint32_t>(job.attempts), tid, t0,
            t1,
            {{"cycles", std::to_string(advanced)},
             {"deltas", std::to_string(job.session->last_slice_deltas())}});
      }
      flight(w, job, obs::FlightEventKind::kSlice, advanced,
             job.session->last_slice_deltas());
      if (job.session->done()) {
        break;
      }
      if (opt_.force_preempt || queue_.has_higher_than(job.spec.priority)) {
        if (job.session->attached()) {
          job.session->detach();
        }
        if (opt_.timeline) {
          opt_.timeline->instant("farm.preempt", now_us(), tid,
                                 {{"job", job.spec.name}});
        }
        ++job.preemptions;
        flight(w, job, obs::FlightEventKind::kPreempt,
               job.session->cycles_done(), job.spec.cycles);
        close_exec_span(w, job, "preempted");
        worker.current_job.store(0, std::memory_order_relaxed);
        if (opt_.metrics) {
          std::lock_guard<std::mutex> lock(metrics_mu_);
          opt_.metrics->counter("farm.preemptions").add();
          opt_.metrics->counter("farm.checkpoints").add();
        }
        queue_.requeue(std::move(job), now_us(), RequeuePosition::kFront);
        return true;
      }
    }
    if (job.session->aborted()) {
      // Fault-report escalation: the hardened host stopped gracefully.
      // Classified transient (kFaultAbort) — in simulation the abort is
      // deterministic, so retries exhaust and the job lands in
      // quarantine with its replay tuple: the designed poison path.
      return finish_failure(w, job, FailureKind::kFaultAbort,
                            job.session->abort_reason());
    }
    JobResult r;
    r.status = JobStatus::kDone;
    close_exec_span(w, job, "done");
    publish(w, job, std::move(r));
    return true;
  } catch (const std::exception& e) {
    return finish_failure(w, job, classify_failure(e), e.what());
  }
}

bool SimFarm::finish_failure(std::size_t w, QueuedJob& job, FailureKind kind,
                             const std::string& message) {
  const bool transient = failure_is_transient(kind);
  const bool will_retry =
      transient && job.attempts <= job.spec.max_retries && !queue_.stopped();
  close_exec_span(w, job, will_retry ? "retry" : "failed");
  if (will_retry) {
    // Retry: restart from scratch. The engine checkpoint alone is not
    // consistent with the harness state mid-attempt, and the spec pins
    // the whole run anyway — a fresh session is provably bit-identical.
    job.session.reset();
    const std::size_t attempt = job.attempts;
    ++job.attempts;
    const double now = now_us();
    job.not_before_us = now + retry_backoff_us(job.spec, attempt);
    // The backoff window itself is a span of the *new* attempt, parented
    // to the root so the retry chain stays one connected tree.
    if (opt_.tracer != nullptr && job.trace.sampled()) {
      opt_.tracer->span(job.trace, opt_.tracer->alloc_span_id(),
                        job.trace.span_id, "farm.retry",
                        static_cast<std::uint32_t>(job.attempts),
                        static_cast<std::uint32_t>(100 + w), now,
                        job.not_before_us,
                        {{"kind", failure_kind_name(kind)}});
    }
    flight(w, job, obs::FlightEventKind::kRetry, job.attempts,
           static_cast<std::uint64_t>(kind));
    workers_[w]->current_job.store(0, std::memory_order_relaxed);
    if (opt_.metrics) {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      opt_.metrics->counter("farm.retries.scheduled").add();
      opt_.metrics
          ->counter("farm.retries.scheduled",
                    std::string("kind=") + failure_kind_name(kind))
          .add();
    }
    queue_.requeue(std::move(job), now, RequeuePosition::kBack);
    return true;
  }
  JobResult r;
  r.status = JobStatus::kFailed;
  r.error = message;
  r.failure.kind = kind;
  r.failure.message = message;
  r.failure.at_cycle = job.session ? job.session->cycles_done() : 0;
  r.failure.attempts = job.attempts;
  r.failure.replay = job.spec.serialize();
  r.failure.quarantined = transient && job.spec.max_retries > 0 &&
                          job.attempts > job.spec.max_retries;
  if (r.failure.quarantined) {
    QuarantineRecord q;
    q.job_id = job.job_id;
    q.name = job.spec.name;
    q.kind = kind;
    q.attempts = job.attempts;
    q.message = message;
    q.replay = r.failure.replay;
    {
      std::lock_guard<std::mutex> lock(farm_mu_);
      quarantine_.push_back(std::move(q));
    }
    if (opt_.metrics) {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      opt_.metrics->counter("farm.retries.exhausted").add();
      opt_.metrics->counter("farm.failures.quarantined").add();
    }
  }
  publish(w, job, std::move(r));
  return true;
}

void SimFarm::publish_cancelled(std::size_t w, QueuedJob& job,
                                CancelCause cause) {
  flight(w, job, obs::FlightEventKind::kCancel,
         static_cast<std::uint64_t>(cause), 0);
  close_exec_span(w, job, "cancelled");
  JobResult r;
  r.status = JobStatus::kCancelled;
  r.cancel_cause = cause;
  publish(w, job, std::move(r));
}

void SimFarm::publish(std::size_t w, QueuedJob& job, JobResult r) {
  const double p0 = now_us();
  r.job_id = job.job_id;
  r.spec_fingerprint = job.spec.fingerprint();
  r.name = job.spec.name;
  if (job.session) {
    // Completed jobs and graceful fault-aborts carry full statistics
    // (the hardened host's abort state is consistent by construction);
    // other terminal states report progress without finalizing.
    if (r.status == JobStatus::kDone ||
        (r.status == JobStatus::kFailed &&
         r.failure.kind == FailureKind::kFaultAbort)) {
      job.session->finalize(r);
    } else if (r.status == JobStatus::kCancelled) {
      // Progress report only; exception-path failures keep cycles at 0
      // exactly like run_job_standalone (failure.at_cycle has the spot).
      r.cycles_simulated = job.session->cycles_done();
    }
    r.failure.last_checkpoint_cycle = job.session->last_checkpoint_cycle();
    r.failure.last_checkpoint_digest = job.session->last_checkpoint_digest();
  }
  const double done_us = now_us();
  r.preemptions = job.preemptions;
  r.slices = job.slices;
  r.last_worker = w;
  r.queue_seconds =
      job.first_us > 0.0 ? (job.first_us - job.submitted_us) * 1e-6 : 0.0;
  r.exec_seconds = job.exec_us * 1e-6;
  r.turnaround_seconds = (done_us - job.submitted_us) * 1e-6;
  {
    // Terminal race arbitration: the first publisher marks the control
    // block terminal and wins; any later publisher for the same job is
    // suppressed — exactly one result per accepted job, always. Only
    // this job's control shard is touched; publishes of unrelated jobs
    // proceed in parallel.
    ControlShard& shard = control_shard(job.job_id);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(job.job_id);
    if (it != shard.map.end()) {
      if (it->second.terminal) {
        workers_[w]->current_job.store(0, std::memory_order_relaxed);
        workers_[w]->publish_us += now_us() - p0;
        return;
      }
      it->second.terminal = true;
      if (r.status == JobStatus::kCancelled &&
          r.cancel_cause == CancelCause::kNone) {
        r.cancel_cause = it->second.cause;
      }
    }
  }
  if (r.status == JobStatus::kCancelled) {
    if (r.cancel_cause == CancelCause::kNone) {
      r.cancel_cause = CancelCause::kUser;
    }
    if (r.error.empty()) {
      r.error =
          std::string("cancelled: ") + cancel_cause_name(r.cancel_cause);
    }
  }
  if (opt_.memo_capacity > 0 && r.status == JobStatus::kDone && !r.memo_hit) {
    memo_store(r.spec_fingerprint, r);
  }
  // Past the arbitration: *this* publisher owns the terminal result, so
  // it is the only one that may record the trace root (exactly one
  // "farm.job" span per trace, even when a racing publisher lost above)
  // and the one whose flight-recorder context rides on the failure.
  if (opt_.tracer != nullptr && job.trace.sampled()) {
    const auto tid = static_cast<std::uint32_t>(100 + w);
    const double end = now_us();
    opt_.tracer->span(job.trace, opt_.tracer->alloc_span_id(),
                      job.trace.span_id, "farm.publish",
                      static_cast<std::uint32_t>(job.attempts), tid, p0, end,
                      {{"status", job_status_name(r.status)}});
    opt_.tracer->span(job.trace, job.trace.span_id, 0, "farm.job",
                      /*attempt=*/0, tid, job.submitted_us, end,
                      {{"job", std::to_string(job.job_id)},
                       {"name", job.spec.name},
                       {"status", job_status_name(r.status)},
                       {"attempts", std::to_string(job.attempts)}});
  }
  flight(w, job, obs::FlightEventKind::kPublish,
         static_cast<std::uint64_t>(r.status), 0);
  if (r.status == JobStatus::kFailed && recorder_) {
    // Black box: the failing worker's recent events for this job travel
    // with the failure, next to the replay tuple. Diagnostic-only —
    // results_equivalent() never looks at it.
    r.failure.flight_recording = recorder_->dump_jsonl(w, job.job_id);
  }
  const JobStatus status = r.status;
  const FailureKind kind = r.failure.kind;
  const CancelCause cause = r.cancel_cause;
  const bool memo_hit = r.memo_hit;
  const bool feed_dropped = results_.put(std::move(r));
  {
    // The control block outlives the result's visibility (cancel() reads
    // "absent + published" as finished), so erase only after put().
    ControlShard& shard = control_shard(job.job_id);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.erase(job.job_id);
  }
  workers_[w]->current_job.store(0, std::memory_order_relaxed);
  if (opt_.metrics) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    switch (status) {
      case JobStatus::kDone:
        opt_.metrics->counter("farm.jobs.completed").add();
        if (memo_hit) {
          opt_.metrics->counter("farm.jobs.completed", "memo=hit").add();
        }
        break;
      case JobStatus::kFailed:
        opt_.metrics->counter("farm.jobs.failed").add();
        opt_.metrics
            ->counter("farm.jobs.failed",
                      std::string("reason=") + failure_kind_name(kind))
            .add();
        break;
      case JobStatus::kCancelled:
        opt_.metrics->counter("farm.jobs.cancelled").add();
        opt_.metrics
            ->counter("farm.jobs.cancelled",
                      std::string("cause=") + cancel_cause_name(cause))
            .add();
        break;
      case JobStatus::kPending:
        break;
    }
    opt_.metrics->counter("farm.worker.jobs", worker_label(w)).add();
    if (feed_dropped) {
      opt_.metrics->counter("farm.results.feed_dropped").add();
    }
  }
  workers_[w]->publish_us += now_us() - p0;
  const std::size_t before = inflight_.fetch_sub(1, std::memory_order_acq_rel);
  TMSIM_CHECK_MSG(before > 0, "result published for an untracked job");
  if (before == 1) {
    // Empty critical section: a drain()er that read inflight_ != 0 under
    // drain_mu_ is guaranteed to be inside wait() before we notify.
    { std::lock_guard<std::mutex> lock(drain_mu_); }
    idle_cv_.notify_all();
  }
}

std::string SimFarm::introspect() const {
  // Live snapshot, callable from any thread while the farm runs. Reads
  // atomics and takes only short leaf locks (queue shards, the result
  // feed, farm_mu_, memo_mu_) — never metrics_mu_, never a worker join.
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  const double now = now_us();
  os << "{\"ts_us\": " << now << ", \"stopping\": "
     << (stopping_.load(std::memory_order_acquire) ? "true" : "false")
     << ", \"inflight\": " << inflight_.load(std::memory_order_relaxed);

  os << ", \"queue\": {\"depth\": " << queue_.depth()
     << ", \"submitted\": " << queue_.jobs_submitted()
     << ", \"rejected\": " << queue_.jobs_rejected() << ", \"classes\": [";
  const auto shards = queue_.introspect_shards();
  for (std::size_t c = 0; c < shards.size(); ++c) {
    if (c > 0) {
      os << ", ";
    }
    os << "{\"class\": \"" << priority_name(static_cast<Priority>(c))
       << "\", \"depth\": " << queue_.depth(static_cast<Priority>(c))
       << ", \"shards\": [";
    for (std::size_t s = 0; s < shards[c].size(); ++s) {
      const AdmissionQueue::ShardDepth& sd = shards[c][s];
      const double age =
          sd.depth > 0 ? std::max(0.0, now - sd.oldest_queued_us) : 0.0;
      os << (s > 0 ? ", " : "") << "{\"depth\": " << sd.depth
         << ", \"oldest_age_us\": " << age << "}";
    }
    os << "]}";
  }
  os << "]}";

  os << ", \"workers\": [";
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const Worker& wk = *workers_[w];
    const char* state = wk.dead.load(std::memory_order_acquire) ? "dead"
                        : wk.idle.load(std::memory_order_relaxed) ? "idle"
                                                                  : "busy";
    os << (w > 0 ? ", " : "") << "{\"worker\": " << w << ", \"state\": \""
       << state << "\", \"job\": "
       << wk.current_job.load(std::memory_order_relaxed) << ", \"span\": \""
       << hex_id(wk.current_span.load(std::memory_order_relaxed))
       << "\", \"heartbeat\": "
       << wk.heartbeat.load(std::memory_order_relaxed) << "}";
  }
  os << "]";

  os << ", \"results\": {\"published\": " << results_.size()
     << ", \"feed_fill\": " << results_.feed_fill()
     << ", \"feed_capacity\": " << results_.feed_capacity()
     << ", \"feed_dropped\": " << results_.completions_dropped() << "}";

  {
    std::lock_guard<std::mutex> lock(farm_mu_);
    os << ", \"counters\": {\"reclaims\": " << reclaims_
       << ", \"quarantined\": " << quarantine_.size() << "}";
  }
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    os << ", \"memo\": {\"hits\": " << memo_hits_
       << ", \"misses\": " << memo_misses_
       << ", \"size\": " << memo_lru_.size() << "}";
  }
  if (opt_.tracer != nullptr) {
    os << ", \"trace\": {\"traces\": " << opt_.tracer->traces_started()
       << ", \"spans\": " << opt_.tracer->spans_recorded()
       << ", \"dropped\": " << opt_.tracer->spans_dropped() << "}";
  }
  if (recorder_) {
    os << ", \"flight\": {\"events\": " << recorder_->events_recorded()
       << ", \"overwritten\": " << recorder_->events_overwritten() << "}";
  }
  {
    // External ingress (tmsim-farmd): listener/connection/outbox/spill
    // state, appended verbatim so one snapshot covers the whole daemon.
    std::lock_guard<std::mutex> lock(ingress_mu_);
    if (ingress_provider_) {
      os << ", \"net\": " << ingress_provider_();
    }
  }
  os << "}";
  return os.str();
}

void SimFarm::set_ingress_provider(std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(ingress_mu_);
  ingress_provider_ = std::move(provider);
}

void SimFarm::write_introspect_file() const {
  std::ofstream out(opt_.introspect_path, std::ios::trunc);
  if (out) {
    out << introspect() << "\n";
  }
}

void SimFarm::introspector_main() {
  const auto interval = std::chrono::microseconds(
      static_cast<std::int64_t>(opt_.introspect_interval_ms * 1e3));
  std::unique_lock<std::mutex> lock(intro_mu_);
  while (!intro_stop_) {
    intro_cv_.wait_for(lock, interval, [&] { return intro_stop_; });
    if (intro_stop_) {
      break;
    }
    lock.unlock();
    write_introspect_file();
    lock.lock();
  }
}

void SimFarm::supervisor_main() {
  const auto interval = std::chrono::microseconds(
      static_cast<std::int64_t>(opt_.supervisor_interval_ms * 1e3));
  std::unique_lock<std::mutex> lock(sup_mu_);
  while (!sup_stop_) {
    sup_cv_.wait_for(lock, interval, [&] { return sup_stop_; });
    if (sup_stop_) {
      break;
    }
    lock.unlock();
    supervisor_scan();
    lock.lock();
  }
}

void SimFarm::supervisor_scan() {
  if (opt_.metrics) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    opt_.metrics->counter("farm.supervisor.scans").add();
  }
  // Deadline enforcement for jobs the workers cannot see yet (still
  // queued, or mid-quantum on a hosted stack — the token stops the host
  // at its next simulation-period boundary).
  std::uint64_t deadlines_enforced = 0;
  {
    const double now = now_us();
    for (ControlShard& shard : control_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto& [id, ctl] : shard.map) {
        if (ctl.terminal || ctl.deadline_at_us <= 0.0 ||
            now < ctl.deadline_at_us ||
            ctl.cancel->load(std::memory_order_relaxed)) {
          continue;
        }
        if (ctl.cause == CancelCause::kNone) {
          ctl.cause = CancelCause::kDeadline;
        }
        ctl.cancel->store(true, std::memory_order_relaxed);
        ++deadlines_enforced;
      }
    }
  }
  if (deadlines_enforced > 0 && opt_.metrics) {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    opt_.metrics->counter("farm.supervisor.deadlines_enforced")
        .add(deadlines_enforced);
  }
  reclaim_dead_workers(/*allow_respawn=*/true);
  update_queue_gauges();
  // Heartbeat scan: a busy worker whose beat has not advanced for
  // `supervisor_miss_threshold` scans is stuck. Escalation (optional)
  // is cooperative too — cancel its job so the worker unwedges at the
  // next boundary it does reach.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    Worker& worker = *workers_[w];
    if (worker.dead.load(std::memory_order_acquire)) {
      continue;  // reclaimed above (or racing to death; next scan)
    }
    const std::uint64_t beat = worker.heartbeat.load(std::memory_order_relaxed);
    if (worker.idle.load(std::memory_order_relaxed) ||
        beat != worker.last_beat) {
      worker.last_beat = beat;
      worker.missed_scans = 0;
      continue;
    }
    if (++worker.missed_scans < opt_.supervisor_miss_threshold) {
      continue;
    }
    worker.missed_scans = 0;
    if (!opt_.supervisor_escalate_stuck) {
      continue;
    }
    const std::uint64_t current =
        worker.current_job.load(std::memory_order_relaxed);
    if (current == 0) {
      continue;
    }
    bool escalated = false;
    {
      ControlShard& shard = control_shard(current);
      std::lock_guard<std::mutex> lock(shard.mu);
      const auto it = shard.map.find(current);
      if (it != shard.map.end() && !it->second.terminal) {
        if (it->second.cause == CancelCause::kNone) {
          it->second.cause = CancelCause::kSupervisor;
        }
        it->second.cancel->store(true, std::memory_order_relaxed);
        escalated = true;
      }
    }
    if (escalated && opt_.metrics) {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      opt_.metrics->counter("farm.supervisor.stuck").add();
    }
  }
}

void SimFarm::reclaim_dead_workers(bool allow_respawn) {
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    Worker& worker = *workers_[w];
    if (!worker.dead.load(std::memory_order_acquire)) {
      continue;
    }
    // Join before touching anything the dead thread wrote: the join is
    // the happens-before edge that makes the orphan (and busy_us) safe
    // to read here.
    if (worker.thread.joinable()) {
      worker.thread.join();
    }
    std::optional<QueuedJob> orphan;
    {
      std::lock_guard<std::mutex> lock(farm_mu_);
      orphan.swap(worker.orphan);
    }
    if (opt_.metrics) {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      opt_.metrics->counter("farm.supervisor.workers_lost").add();
    }
    if (orphan) {
      if (!queue_.stopped()) {
        // Reclaim: back to the front of its class, resuming from the
        // detach-time checkpoint (graceful kill) or from scratch (hard
        // kill dropped the session).
        const double rnow = now_us();
        if (opt_.tracer != nullptr && orphan->trace.sampled()) {
          opt_.tracer->span(orphan->trace, opt_.tracer->alloc_span_id(),
                            orphan->trace.span_id, "farm.reclaim",
                            static_cast<std::uint32_t>(orphan->attempts),
                            /*tid=*/90, rnow, rnow,
                            {{"worker", std::to_string(w)},
                             {"resumable", orphan->session ? "1" : "0"}});
        }
        flight(workers_.size(), *orphan, obs::FlightEventKind::kReclaim, w,
               orphan->session ? 1 : 0);
        queue_.requeue(std::move(*orphan), now_us(),
                       RequeuePosition::kFront);
        {
          std::lock_guard<std::mutex> lock(farm_mu_);
          ++reclaims_;
        }
        if (opt_.metrics) {
          std::lock_guard<std::mutex> lock(metrics_mu_);
          opt_.metrics->counter("farm.supervisor.jobs_reclaimed").add();
        }
      } else {
        publish_cancelled(w, *orphan, CancelCause::kSupervisor);
      }
    }
    worker.kill_requested.store(false, std::memory_order_relaxed);
    worker.lose_session.store(false, std::memory_order_relaxed);
    worker.last_beat = worker.heartbeat.load(std::memory_order_relaxed);
    worker.missed_scans = 0;
    worker.dead.store(false, std::memory_order_release);
    if (allow_respawn && opt_.respawn_lost_workers && !queue_.stopped()) {
      worker.thread = std::thread([this, w] { worker_main(w); });
      if (opt_.metrics) {
        std::lock_guard<std::mutex> lock(metrics_mu_);
        opt_.metrics->counter("farm.supervisor.respawns").add();
      }
    }
  }
}

}  // namespace tmsim::farm
