#include "farm/farm.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/chrome_trace.h"
#include "obs/metrics.h"

namespace tmsim::farm {

namespace {

std::string engine_cache_key(const JobSpec& spec) {
  const core::EngineOptions opts = effective_engine_options(spec, true);
  std::ostringstream os;
  os << spec.net.width << "x" << spec.net.height << ":"
     << static_cast<int>(spec.net.topology) << ":" << spec.net.router.num_vcs
     << ":" << spec.net.router.queue_depth << ":"
     << static_cast<int>(opts.policy) << ":" << opts.num_shards << ":"
     << static_cast<int>(opts.partition) << ":"
     << static_cast<int>(opts.scheduler);
  return os.str();
}

std::string worker_label(std::size_t w) {
  return "worker=" + std::to_string(w);
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* cancel_result_name(CancelResult r) {
  switch (r) {
    case CancelResult::kUnknownJob: return "unknown_job";
    case CancelResult::kAlreadyFinished: return "already_finished";
    case CancelResult::kRequested: return "requested";
  }
  return "?";
}

SimFarm::SimFarm(FarmOptions opt)
    : opt_(opt),
      queue_(opt.queue_capacity, opt.max_job_cycles,
             [this] { return now_us(); }),
      results_(opt.completion_feed_depth) {
  TMSIM_CHECK_MSG(opt_.num_workers >= 1, "farm needs at least one worker");
  TMSIM_CHECK_MSG(opt_.preempt_quantum >= 1, "quantum must be positive");
  for (std::size_t w = 0; w < opt_.num_workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  if (opt_.timeline) {
    for (std::size_t w = 0; w < opt_.num_workers; ++w) {
      opt_.timeline->name_thread(static_cast<std::uint32_t>(100 + w),
                                 "farm.worker" + std::to_string(w));
    }
  }
  for (std::size_t w = 0; w < opt_.num_workers; ++w) {
    workers_[w]->thread = std::thread([this, w] { worker_main(w); });
  }
  if (opt_.supervisor_interval_ms > 0.0) {
    supervisor_ = std::thread([this] { supervisor_main(); });
  }
}

SimFarm::~SimFarm() { shutdown(); }

double SimFarm::now_us() const {
  if (opt_.timeline) {
    return opt_.timeline->now_us();
  }
  return static_cast<double>(steady_now_ns()) * 1e-3;
}

void SimFarm::update_queue_gauges() {
  // Callers hold farm_mu_, so each gauge keeps a single writer at a time.
  if (!opt_.metrics) {
    return;
  }
  for (std::size_t c = 0; c < kNumPriorities; ++c) {
    const auto p = static_cast<Priority>(c);
    opt_.metrics->gauge("farm.queue.depth",
                        std::string("class=") + priority_name(p))
        .set(static_cast<double>(queue_.depth(p)));
  }
}

SubmitOutcome SimFarm::submit(const JobSpec& spec) {
  SubmitOutcome out;
  const double now = now_us();
  // farm_mu_ spans the enqueue *and* the control-record insert: the
  // instant queue_.submit makes the job poppable a worker may grab it,
  // and run_job's first act is to look up the control record under
  // farm_mu_ — it must already exist by the time we release.
  std::lock_guard<std::mutex> lock(farm_mu_);
  if (stopping_) {
    out.reason = RejectReason::kStopped;
    out.detail = "farm is shutting down";
  } else {
    out = queue_.submit(spec, now);
  }
  if (out.accepted) {
    ++inflight_;
    JobControl ctl;
    if (spec.deadline_ms > 0) {
      ctl.deadline_at_us = now + static_cast<double>(spec.deadline_ms) * 1e3;
    }
    control_.emplace(out.job_id, std::move(ctl));
  }
  if (opt_.metrics) {
    opt_.metrics->counter("farm.admission.submitted").add();
    if (out.accepted) {
      opt_.metrics->counter("farm.admission.accepted").add();
    } else {
      opt_.metrics->counter("farm.admission.rejected").add();
      opt_.metrics
          ->counter("farm.admission.rejected",
                    std::string("reason=") + reject_reason_name(out.reason))
          .add();
    }
  }
  update_queue_gauges();
  return out;
}

CancelResult SimFarm::cancel(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(farm_mu_);
  const auto it = control_.find(job_id);
  if (it == control_.end()) {
    // Control blocks live from admission to publish: absent + published
    // means finished, absent + unpublished means never ours.
    return results_.get(job_id) ? CancelResult::kAlreadyFinished
                                : CancelResult::kUnknownJob;
  }
  if (it->second.terminal) {
    return CancelResult::kAlreadyFinished;
  }
  if (it->second.cause == CancelCause::kNone) {
    it->second.cause = CancelCause::kUser;
  }
  it->second.cancel->store(true, std::memory_order_relaxed);
  if (opt_.metrics) {
    opt_.metrics->counter("farm.cancellations.requested").add();
  }
  return CancelResult::kRequested;
}

void SimFarm::kill_worker(std::size_t w, bool lose_session) {
  TMSIM_CHECK_MSG(w < workers_.size(), "no such worker");
  if (lose_session) {
    workers_[w]->lose_session.store(true, std::memory_order_relaxed);
  }
  workers_[w]->kill_requested.store(true, std::memory_order_relaxed);
}

std::vector<QuarantineRecord> SimFarm::quarantined() const {
  std::lock_guard<std::mutex> lock(farm_mu_);
  return quarantine_;
}

std::uint64_t SimFarm::jobs_reclaimed() const {
  std::lock_guard<std::mutex> lock(farm_mu_);
  return reclaims_;
}

void SimFarm::drain() {
  std::unique_lock<std::mutex> lock(farm_mu_);
  idle_cv_.wait(lock, [&] { return inflight_ == 0; });
}

void SimFarm::shutdown() {
  {
    std::lock_guard<std::mutex> lock(farm_mu_);
    stopping_ = true;
  }
  // 1. Stop the supervisor first: below this line nothing reclaims or
  //    respawns concurrently, so the joins are race-free.
  if (supervisor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(sup_mu_);
      sup_stop_ = true;
    }
    sup_cv_.notify_all();
    supervisor_.join();
  }
  // 2. Final reclaim pass: dead workers' orphans go back on the queue,
  //    and replacements are spawned so the backlog still has someone to
  //    run it even if the whole pool was killed.
  reclaim_dead_workers(/*allow_respawn=*/true);
  // 3. Drain: stop intake; workers run the backlog dry (including jobs
  //    still sleeping out a retry backoff), then exit.
  queue_.stop();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
  // 4. No job left behind: a worker killed *during* the drain leaves an
  //    orphan with nobody to reclaim it, and a fully-killed pool leaves
  //    queued jobs unpopped. Resolve both as kCancelled (supervisor
  //    cause) so every accepted job still gets exactly one result.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    std::optional<QueuedJob> orphan;
    {
      std::lock_guard<std::mutex> lock(farm_mu_);
      orphan.swap(workers_[w]->orphan);
    }
    if (orphan) {
      publish_cancelled(w, *orphan, CancelCause::kSupervisor);
    }
  }
  while (std::optional<QueuedJob> job = queue_.pop_blocking()) {
    publish_cancelled(0, *job, CancelCause::kSupervisor);
  }
  // 5. End-of-life instruments.
  const double end_us = now_us();
  if (opt_.metrics && end_us > 0.0) {
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      opt_.metrics->gauge("farm.worker.utilization", worker_label(w))
          .set(workers_[w]->busy_us / end_us);
      opt_.metrics->counter("farm.worker.busy_us", worker_label(w))
          .set(static_cast<std::uint64_t>(workers_[w]->busy_us));
      opt_.metrics->counter("farm.worker.cache_hits", worker_label(w))
          .set(workers_[w]->cache_hits);
      opt_.metrics->counter("farm.worker.cache_misses", worker_label(w))
          .set(workers_[w]->cache_misses);
    }
  }
}

void SimFarm::worker_main(std::size_t w) {
  Worker& worker = *workers_[w];
  for (;;) {
    worker.idle.store(true, std::memory_order_relaxed);
    std::optional<QueuedJob> job = queue_.pop_blocking();
    worker.idle.store(false, std::memory_order_relaxed);
    if (!job) {
      return;
    }
    worker.heartbeat.fetch_add(1, std::memory_order_relaxed);
    if (!run_job(w, std::move(*job))) {
      return;  // killed: the orphan slot holds any in-flight job
    }
  }
}

core::SeqNocSimulation& SimFarm::acquire_engine(std::size_t w,
                                                const JobSpec& spec) {
  Worker& worker = *workers_[w];
  const std::string key = engine_cache_key(spec);
  for (CachedEngine& e : worker.cache) {
    if (e.key == key) {
      e.last_used = ++worker.cache_clock;
      ++worker.cache_hits;
      return *e.sim;
    }
  }
  ++worker.cache_misses;
  if (worker.cache.size() >= opt_.engine_cache_per_worker &&
      !worker.cache.empty()) {
    std::size_t lru = 0;
    for (std::size_t i = 1; i < worker.cache.size(); ++i) {
      if (worker.cache[i].last_used < worker.cache[lru].last_used) {
        lru = i;
      }
    }
    worker.cache.erase(worker.cache.begin() + static_cast<std::ptrdiff_t>(lru));
  }
  CachedEngine e;
  e.key = key;
  e.sim = std::make_unique<core::SeqNocSimulation>(
      spec.net, effective_engine_options(spec, /*canonical_seed=*/true));
  e.last_used = ++worker.cache_clock;
  worker.cache.push_back(std::move(e));
  return *worker.cache.back().sim;
}

double SimFarm::retry_backoff_us(const JobSpec& spec,
                                 std::size_t attempt) const {
  // Deterministic: exponential in the attempt, jitter a pure function of
  // (spec.seed, attempt) — a replayed failure schedule backs off on the
  // exact same instants.
  const double expo = static_cast<double>(
      1ull << std::min<std::size_t>(attempt > 0 ? attempt - 1 : 0, 10));
  const std::uint64_t h = derive_seed(
      spec.seed ^ (static_cast<std::uint64_t>(attempt) * 0x9e3779b97f4a7c15ull),
      "retry-backoff");
  const double jitter = static_cast<double>(h % 1024) / 1024.0;
  return opt_.retry_backoff_base_us * (expo + jitter);
}

bool SimFarm::run_job(std::size_t w, QueuedJob job) {
  Worker& worker = *workers_[w];
  const auto tid = static_cast<std::uint32_t>(100 + w);
  const bool resumed = job.session != nullptr;
  std::shared_ptr<std::atomic<bool>> token;
  {
    std::lock_guard<std::mutex> lock(farm_mu_);
    const auto it = control_.find(job.job_id);
    TMSIM_CHECK_MSG(it != control_.end(),
                    "in-flight job without a control record");
    token = it->second.cancel;
    worker.current_job = job.job_id;
  }
  try {
    if (!job.session) {
      job.session = std::make_shared<SimSession>(job.spec);
    }
    job.session->bind_cancel(token);
    if (job.first_us == 0.0) {
      job.first_us = now_us();
    }
    if (job.session->needs_engine()) {
      job.session->attach(acquire_engine(w, job.spec), opt_.paranoid_resume);
    }
    if (resumed && opt_.metrics) {
      std::lock_guard<std::mutex> lock(farm_mu_);
      opt_.metrics->counter("farm.resumes").add();
    }
    for (;;) {
      worker.heartbeat.fetch_add(1, std::memory_order_relaxed);
      // Terminal checks first, so a cancelled/expired job never burns
      // another slice. Cooperative cancellation (user / deadline-by-
      // supervisor / stuck-escalation):
      if (token->load(std::memory_order_relaxed)) {
        publish_cancelled(w, job, CancelCause::kNone);  // cause from control
        return true;
      }
      // Worker-side deadline check (covers supervisor-less farms).
      if (job.deadline_at_us > 0.0 && now_us() >= job.deadline_at_us) {
        publish_cancelled(w, job, CancelCause::kDeadline);
        return true;
      }
      // Chaos hook (tests/bench): may throw into the failure path or
      // flip this worker's kill flags.
      if (opt_.chaos) {
        ChaosEvent ev;
        ev.worker = w;
        ev.job_id = job.job_id;
        ev.spec = &job.spec;
        ev.attempt = job.attempts;
        ev.slice = job.slices;
        switch (opt_.chaos(ev)) {
          case ChaosAction::kNone:
            break;
          case ChaosAction::kThrowTransient:
            throw TransientError("chaos: injected transient fault");
          case ChaosAction::kThrowPermanent:
            throw Error("chaos: injected permanent fault");
          case ChaosAction::kKillWorkerLoseSession:
            worker.lose_session.store(true, std::memory_order_relaxed);
            [[fallthrough]];
          case ChaosAction::kKillWorker:
            worker.kill_requested.store(true, std::memory_order_relaxed);
            break;
        }
      }
      // Cooperative death, always at a slice boundary (a std::thread
      // cannot be killed mid-slice; the boundary is exactly where the
      // checkpoint contract already proves the state consistent).
      if (worker.kill_requested.load(std::memory_order_relaxed)) {
        if (worker.lose_session.load(std::memory_order_relaxed)) {
          job.session.reset();  // hard kill: the job restarts from scratch
        } else if (job.session->attached()) {
          job.session->detach();  // graceful: consistent checkpoint survives
        }
        if (opt_.timeline) {
          opt_.timeline->instant("farm.worker.die", now_us(), tid,
                                 {{"job", job.spec.name}});
        }
        {
          std::lock_guard<std::mutex> lock(farm_mu_);
          worker.current_job = 0;
          worker.orphan = std::move(job);
        }
        worker.dead.store(true, std::memory_order_release);
        return false;
      }
      const double t0 = now_us();
      SystemCycle advanced = 0;
      try {
        advanced = job.session->advance(opt_.preempt_quantum);
      } catch (...) {
        // Bill the partial slice: busy_us accounts every slice executed,
        // including the ones that end in a throw.
        const double t1 = now_us();
        worker.busy_us += t1 - t0;
        job.exec_us += t1 - t0;
        ++job.slices;
        throw;
      }
      const double t1 = now_us();
      worker.busy_us += t1 - t0;
      job.exec_us += t1 - t0;
      ++job.slices;
      if (opt_.metrics) {
        opt_.metrics->counter("farm.worker.slices", worker_label(w)).add();
      }
      if (opt_.timeline) {
        opt_.timeline->span(
            "farm.slice", t0, t1 - t0, tid,
            {{"job", job.spec.name},
             {"cycles", std::to_string(advanced)}});
      }
      if (job.session->done()) {
        break;
      }
      if (opt_.force_preempt || queue_.has_higher_than(job.spec.priority)) {
        if (job.session->attached()) {
          job.session->detach();
        }
        if (opt_.timeline) {
          opt_.timeline->instant("farm.preempt", now_us(), tid,
                                 {{"job", job.spec.name}});
        }
        ++job.preemptions;
        {
          std::lock_guard<std::mutex> lock(farm_mu_);
          worker.current_job = 0;
          if (opt_.metrics) {
            opt_.metrics->counter("farm.preemptions").add();
            opt_.metrics->counter("farm.checkpoints").add();
          }
        }
        queue_.requeue(std::move(job), now_us(), RequeuePosition::kFront);
        {
          std::lock_guard<std::mutex> lock(farm_mu_);
          update_queue_gauges();
        }
        return true;
      }
    }
    if (job.session->aborted()) {
      // Fault-report escalation: the hardened host stopped gracefully.
      // Classified transient (kFaultAbort) — in simulation the abort is
      // deterministic, so retries exhaust and the job lands in
      // quarantine with its replay tuple: the designed poison path.
      return finish_failure(w, job, FailureKind::kFaultAbort,
                            job.session->abort_reason());
    }
    JobResult r;
    r.status = JobStatus::kDone;
    publish(w, job, std::move(r));
    return true;
  } catch (const std::exception& e) {
    return finish_failure(w, job, classify_failure(e), e.what());
  }
}

bool SimFarm::finish_failure(std::size_t w, QueuedJob& job, FailureKind kind,
                             const std::string& message) {
  const bool transient = failure_is_transient(kind);
  if (transient && job.attempts <= job.spec.max_retries && !queue_.stopped()) {
    // Retry: restart from scratch. The engine checkpoint alone is not
    // consistent with the harness state mid-attempt, and the spec pins
    // the whole run anyway — a fresh session is provably bit-identical.
    job.session.reset();
    const std::size_t attempt = job.attempts;
    ++job.attempts;
    const double now = now_us();
    job.not_before_us = now + retry_backoff_us(job.spec, attempt);
    {
      std::lock_guard<std::mutex> lock(farm_mu_);
      workers_[w]->current_job = 0;
      if (opt_.metrics) {
        opt_.metrics->counter("farm.retries.scheduled").add();
        opt_.metrics
            ->counter("farm.retries.scheduled",
                      std::string("kind=") + failure_kind_name(kind))
            .add();
      }
    }
    queue_.requeue(std::move(job), now, RequeuePosition::kBack);
    {
      std::lock_guard<std::mutex> lock(farm_mu_);
      update_queue_gauges();
    }
    return true;
  }
  JobResult r;
  r.status = JobStatus::kFailed;
  r.error = message;
  r.failure.kind = kind;
  r.failure.message = message;
  r.failure.at_cycle = job.session ? job.session->cycles_done() : 0;
  r.failure.attempts = job.attempts;
  r.failure.replay = job.spec.serialize();
  r.failure.quarantined = transient && job.spec.max_retries > 0 &&
                          job.attempts > job.spec.max_retries;
  if (r.failure.quarantined) {
    QuarantineRecord q;
    q.job_id = job.job_id;
    q.name = job.spec.name;
    q.kind = kind;
    q.attempts = job.attempts;
    q.message = message;
    q.replay = r.failure.replay;
    std::lock_guard<std::mutex> lock(farm_mu_);
    quarantine_.push_back(std::move(q));
    if (opt_.metrics) {
      opt_.metrics->counter("farm.retries.exhausted").add();
      opt_.metrics->counter("farm.failures.quarantined").add();
    }
  }
  publish(w, job, std::move(r));
  return true;
}

void SimFarm::publish_cancelled(std::size_t w, QueuedJob& job,
                                CancelCause cause) {
  JobResult r;
  r.status = JobStatus::kCancelled;
  r.cancel_cause = cause;
  publish(w, job, std::move(r));
}

void SimFarm::publish(std::size_t w, QueuedJob& job, JobResult r) {
  r.job_id = job.job_id;
  r.spec_fingerprint = job.spec.fingerprint();
  r.name = job.spec.name;
  if (job.session) {
    // Completed jobs and graceful fault-aborts carry full statistics
    // (the hardened host's abort state is consistent by construction);
    // other terminal states report progress without finalizing.
    if (r.status == JobStatus::kDone ||
        (r.status == JobStatus::kFailed &&
         r.failure.kind == FailureKind::kFaultAbort)) {
      job.session->finalize(r);
    } else if (r.status == JobStatus::kCancelled) {
      // Progress report only; exception-path failures keep cycles at 0
      // exactly like run_job_standalone (failure.at_cycle has the spot).
      r.cycles_simulated = job.session->cycles_done();
    }
    r.failure.last_checkpoint_cycle = job.session->last_checkpoint_cycle();
    r.failure.last_checkpoint_digest = job.session->last_checkpoint_digest();
  }
  const double done_us = now_us();
  r.preemptions = job.preemptions;
  r.slices = job.slices;
  r.last_worker = w;
  r.queue_seconds =
      job.first_us > 0.0 ? (job.first_us - job.submitted_us) * 1e-6 : 0.0;
  r.exec_seconds = job.exec_us * 1e-6;
  r.turnaround_seconds = (done_us - job.submitted_us) * 1e-6;
  {
    // Terminal race arbitration: the first publisher marks the control
    // block terminal and wins; any later publisher for the same job is
    // suppressed — exactly one result per accepted job, always.
    std::lock_guard<std::mutex> lock(farm_mu_);
    const auto it = control_.find(job.job_id);
    if (it != control_.end()) {
      if (it->second.terminal) {
        workers_[w]->current_job = 0;
        return;
      }
      it->second.terminal = true;
      if (r.status == JobStatus::kCancelled &&
          r.cancel_cause == CancelCause::kNone) {
        r.cancel_cause = it->second.cause;
      }
    }
  }
  if (r.status == JobStatus::kCancelled) {
    if (r.cancel_cause == CancelCause::kNone) {
      r.cancel_cause = CancelCause::kUser;
    }
    if (r.error.empty()) {
      r.error =
          std::string("cancelled: ") + cancel_cause_name(r.cancel_cause);
    }
  }
  const JobStatus status = r.status;
  const FailureKind kind = r.failure.kind;
  const CancelCause cause = r.cancel_cause;
  const bool feed_dropped = results_.put(std::move(r));

  std::lock_guard<std::mutex> lock(farm_mu_);
  workers_[w]->current_job = 0;
  if (opt_.metrics) {
    switch (status) {
      case JobStatus::kDone:
        opt_.metrics->counter("farm.jobs.completed").add();
        break;
      case JobStatus::kFailed:
        opt_.metrics->counter("farm.jobs.failed").add();
        opt_.metrics
            ->counter("farm.jobs.failed",
                      std::string("reason=") + failure_kind_name(kind))
            .add();
        break;
      case JobStatus::kCancelled:
        opt_.metrics->counter("farm.jobs.cancelled").add();
        opt_.metrics
            ->counter("farm.jobs.cancelled",
                      std::string("cause=") + cancel_cause_name(cause))
            .add();
        break;
      case JobStatus::kPending:
        break;
    }
    opt_.metrics->counter("farm.worker.jobs", worker_label(w)).add();
    if (feed_dropped) {
      opt_.metrics->counter("farm.results.feed_dropped").add();
    }
  }
  update_queue_gauges();
  control_.erase(job.job_id);
  TMSIM_CHECK_MSG(inflight_ > 0, "result published for an untracked job");
  --inflight_;
  if (inflight_ == 0) {
    idle_cv_.notify_all();
  }
}

void SimFarm::supervisor_main() {
  const auto interval = std::chrono::microseconds(
      static_cast<std::int64_t>(opt_.supervisor_interval_ms * 1e3));
  std::unique_lock<std::mutex> lock(sup_mu_);
  while (!sup_stop_) {
    sup_cv_.wait_for(lock, interval, [&] { return sup_stop_; });
    if (sup_stop_) {
      break;
    }
    lock.unlock();
    supervisor_scan();
    lock.lock();
  }
}

void SimFarm::supervisor_scan() {
  if (opt_.metrics) {
    std::lock_guard<std::mutex> lock(farm_mu_);
    opt_.metrics->counter("farm.supervisor.scans").add();
  }
  // Deadline enforcement for jobs the workers cannot see yet (still
  // queued, or mid-quantum on a hosted stack — the token stops the host
  // at its next simulation-period boundary).
  {
    std::lock_guard<std::mutex> lock(farm_mu_);
    const double now = now_us();
    for (auto& [id, ctl] : control_) {
      if (ctl.terminal || ctl.deadline_at_us <= 0.0 ||
          now < ctl.deadline_at_us ||
          ctl.cancel->load(std::memory_order_relaxed)) {
        continue;
      }
      if (ctl.cause == CancelCause::kNone) {
        ctl.cause = CancelCause::kDeadline;
      }
      ctl.cancel->store(true, std::memory_order_relaxed);
      if (opt_.metrics) {
        opt_.metrics->counter("farm.supervisor.deadlines_enforced").add();
      }
    }
  }
  reclaim_dead_workers(/*allow_respawn=*/true);
  // Heartbeat scan: a busy worker whose beat has not advanced for
  // `supervisor_miss_threshold` scans is stuck. Escalation (optional)
  // is cooperative too — cancel its job so the worker unwedges at the
  // next boundary it does reach.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    Worker& worker = *workers_[w];
    if (worker.dead.load(std::memory_order_acquire)) {
      continue;  // reclaimed above (or racing to death; next scan)
    }
    const std::uint64_t beat = worker.heartbeat.load(std::memory_order_relaxed);
    if (worker.idle.load(std::memory_order_relaxed) ||
        beat != worker.last_beat) {
      worker.last_beat = beat;
      worker.missed_scans = 0;
      continue;
    }
    if (++worker.missed_scans < opt_.supervisor_miss_threshold) {
      continue;
    }
    worker.missed_scans = 0;
    if (!opt_.supervisor_escalate_stuck) {
      continue;
    }
    std::lock_guard<std::mutex> lock(farm_mu_);
    const auto it = control_.find(worker.current_job);
    if (worker.current_job != 0 && it != control_.end() &&
        !it->second.terminal) {
      if (it->second.cause == CancelCause::kNone) {
        it->second.cause = CancelCause::kSupervisor;
      }
      it->second.cancel->store(true, std::memory_order_relaxed);
      if (opt_.metrics) {
        opt_.metrics->counter("farm.supervisor.stuck").add();
      }
    }
  }
}

void SimFarm::reclaim_dead_workers(bool allow_respawn) {
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    Worker& worker = *workers_[w];
    if (!worker.dead.load(std::memory_order_acquire)) {
      continue;
    }
    // Join before touching anything the dead thread wrote: the join is
    // the happens-before edge that makes the orphan (and busy_us) safe
    // to read here.
    if (worker.thread.joinable()) {
      worker.thread.join();
    }
    std::optional<QueuedJob> orphan;
    {
      std::lock_guard<std::mutex> lock(farm_mu_);
      orphan.swap(worker.orphan);
      if (opt_.metrics) {
        opt_.metrics->counter("farm.supervisor.workers_lost").add();
      }
    }
    if (orphan) {
      if (!queue_.stopped()) {
        // Reclaim: back to the front of its class, resuming from the
        // detach-time checkpoint (graceful kill) or from scratch (hard
        // kill dropped the session).
        queue_.requeue(std::move(*orphan), now_us(),
                       RequeuePosition::kFront);
        std::lock_guard<std::mutex> lock(farm_mu_);
        ++reclaims_;
        if (opt_.metrics) {
          opt_.metrics->counter("farm.supervisor.jobs_reclaimed").add();
        }
        update_queue_gauges();
      } else {
        publish_cancelled(w, *orphan, CancelCause::kSupervisor);
      }
    }
    worker.kill_requested.store(false, std::memory_order_relaxed);
    worker.lose_session.store(false, std::memory_order_relaxed);
    worker.last_beat = worker.heartbeat.load(std::memory_order_relaxed);
    worker.missed_scans = 0;
    worker.dead.store(false, std::memory_order_release);
    if (allow_respawn && opt_.respawn_lost_workers && !queue_.stopped()) {
      worker.thread = std::thread([this, w] { worker_main(w); });
      std::lock_guard<std::mutex> lock(farm_mu_);
      if (opt_.metrics) {
        opt_.metrics->counter("farm.supervisor.respawns").add();
      }
    }
  }
}

}  // namespace tmsim::farm
