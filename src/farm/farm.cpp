#include "farm/farm.h"

#include <chrono>
#include <sstream>

#include "obs/chrome_trace.h"
#include "obs/metrics.h"

namespace tmsim::farm {

namespace {

std::string engine_cache_key(const JobSpec& spec) {
  const core::EngineOptions opts = effective_engine_options(spec, true);
  std::ostringstream os;
  os << spec.net.width << "x" << spec.net.height << ":"
     << static_cast<int>(spec.net.topology) << ":" << spec.net.router.num_vcs
     << ":" << spec.net.router.queue_depth << ":"
     << static_cast<int>(opts.policy) << ":" << opts.num_shards << ":"
     << static_cast<int>(opts.partition) << ":"
     << static_cast<int>(opts.scheduler);
  return os.str();
}

std::string worker_label(std::size_t w) {
  return "worker=" + std::to_string(w);
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SimFarm::SimFarm(FarmOptions opt)
    : opt_(opt),
      queue_(opt.queue_capacity, opt.max_job_cycles),
      results_(opt.completion_feed_depth) {
  TMSIM_CHECK_MSG(opt_.num_workers >= 1, "farm needs at least one worker");
  TMSIM_CHECK_MSG(opt_.preempt_quantum >= 1, "quantum must be positive");
  for (std::size_t w = 0; w < opt_.num_workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  if (opt_.timeline) {
    for (std::size_t w = 0; w < opt_.num_workers; ++w) {
      opt_.timeline->name_thread(static_cast<std::uint32_t>(100 + w),
                                 "farm.worker" + std::to_string(w));
    }
  }
  for (std::size_t w = 0; w < opt_.num_workers; ++w) {
    workers_[w]->thread = std::thread([this, w] { worker_main(w); });
  }
}

SimFarm::~SimFarm() { shutdown(); }

double SimFarm::now_us() const {
  if (opt_.timeline) {
    return opt_.timeline->now_us();
  }
  return static_cast<double>(steady_now_ns()) * 1e-3;
}

void SimFarm::update_queue_gauges() {
  // Callers hold farm_mu_, so each gauge keeps a single writer at a time.
  if (!opt_.metrics) {
    return;
  }
  for (std::size_t c = 0; c < kNumPriorities; ++c) {
    const auto p = static_cast<Priority>(c);
    opt_.metrics->gauge("farm.queue.depth",
                        std::string("class=") + priority_name(p))
        .set(static_cast<double>(queue_.depth(p)));
  }
}

SubmitOutcome SimFarm::submit(const JobSpec& spec) {
  SubmitOutcome out;
  {
    std::lock_guard<std::mutex> lock(farm_mu_);
    if (stopping_) {
      out.reason = RejectReason::kStopped;
      out.detail = "farm is shutting down";
    }
  }
  if (out.reason != RejectReason::kStopped) {
    out = queue_.submit(spec, now_us());
  }
  std::lock_guard<std::mutex> lock(farm_mu_);
  if (out.accepted) {
    ++inflight_;
  }
  if (opt_.metrics) {
    opt_.metrics->counter("farm.admission.submitted").add();
    if (out.accepted) {
      opt_.metrics->counter("farm.admission.accepted").add();
    } else {
      opt_.metrics->counter("farm.admission.rejected").add();
      opt_.metrics
          ->counter("farm.admission.rejected",
                    std::string("reason=") + reject_reason_name(out.reason))
          .add();
    }
  }
  update_queue_gauges();
  return out;
}

void SimFarm::drain() {
  std::unique_lock<std::mutex> lock(farm_mu_);
  idle_cv_.wait(lock, [&] { return inflight_ == 0; });
}

void SimFarm::shutdown() {
  {
    std::lock_guard<std::mutex> lock(farm_mu_);
    stopping_ = true;
  }
  queue_.stop();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
  const double end_us = now_us();
  if (opt_.metrics && end_us > 0.0) {
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      opt_.metrics->gauge("farm.worker.utilization", worker_label(w))
          .set(workers_[w]->busy_us / end_us);
      opt_.metrics->counter("farm.worker.cache_hits", worker_label(w))
          .set(workers_[w]->cache_hits);
      opt_.metrics->counter("farm.worker.cache_misses", worker_label(w))
          .set(workers_[w]->cache_misses);
    }
  }
}

void SimFarm::worker_main(std::size_t w) {
  while (auto job = queue_.pop_blocking()) {
    run_job(w, std::move(*job));
  }
}

core::SeqNocSimulation& SimFarm::acquire_engine(std::size_t w,
                                                const JobSpec& spec) {
  Worker& worker = *workers_[w];
  const std::string key = engine_cache_key(spec);
  for (CachedEngine& e : worker.cache) {
    if (e.key == key) {
      e.last_used = ++worker.cache_clock;
      ++worker.cache_hits;
      return *e.sim;
    }
  }
  ++worker.cache_misses;
  if (worker.cache.size() >= opt_.engine_cache_per_worker &&
      !worker.cache.empty()) {
    std::size_t lru = 0;
    for (std::size_t i = 1; i < worker.cache.size(); ++i) {
      if (worker.cache[i].last_used < worker.cache[lru].last_used) {
        lru = i;
      }
    }
    worker.cache.erase(worker.cache.begin() + static_cast<std::ptrdiff_t>(lru));
  }
  CachedEngine e;
  e.key = key;
  e.sim = std::make_unique<core::SeqNocSimulation>(
      spec.net, effective_engine_options(spec, /*canonical_seed=*/true));
  e.last_used = ++worker.cache_clock;
  worker.cache.push_back(std::move(e));
  return *worker.cache.back().sim;
}

void SimFarm::run_job(std::size_t w, QueuedJob job) {
  Worker& worker = *workers_[w];
  const auto tid = static_cast<std::uint32_t>(100 + w);
  const bool resumed = job.session != nullptr;
  try {
    if (!job.session) {
      job.session = std::make_shared<SimSession>(job.spec);
    }
    if (job.first_us == 0.0) {
      job.first_us = now_us();
    }
    if (job.session->needs_engine()) {
      job.session->attach(acquire_engine(w, job.spec), opt_.paranoid_resume);
    }
    if (resumed && opt_.metrics) {
      std::lock_guard<std::mutex> lock(farm_mu_);
      opt_.metrics->counter("farm.resumes").add();
    }
    for (;;) {
      const double t0 = now_us();
      const SystemCycle advanced = job.session->advance(opt_.preempt_quantum);
      const double t1 = now_us();
      worker.busy_us += t1 - t0;
      job.exec_us += t1 - t0;
      ++job.slices;
      if (opt_.metrics) {
        opt_.metrics->counter("farm.worker.slices", worker_label(w)).add();
      }
      if (opt_.timeline) {
        opt_.timeline->span(
            "farm.slice", t0, t1 - t0, tid,
            {{"job", job.spec.name},
             {"cycles", std::to_string(advanced)}});
      }
      if (job.session->done()) {
        break;
      }
      if (opt_.force_preempt || queue_.has_higher_than(job.spec.priority)) {
        if (job.session->attached()) {
          job.session->detach();
        }
        if (opt_.timeline) {
          opt_.timeline->instant("farm.preempt", now_us(), tid,
                                 {{"job", job.spec.name}});
        }
        std::lock_guard<std::mutex> lock(farm_mu_);
        if (opt_.metrics) {
          opt_.metrics->counter("farm.preemptions").add();
          opt_.metrics->counter("farm.checkpoints").add();
        }
        queue_.requeue(std::move(job), now_us());
        update_queue_gauges();
        return;
      }
    }
    publish(w, job, JobStatus::kDone, "");
  } catch (const std::exception& e) {
    publish(w, job, JobStatus::kFailed, e.what());
  }
}

void SimFarm::publish(std::size_t w, QueuedJob& job, JobStatus status,
                      const std::string& error) {
  JobResult r;
  r.job_id = job.job_id;
  r.spec_fingerprint = job.spec.fingerprint();
  r.name = job.spec.name;
  r.status = status;
  r.error = error;
  if (job.session && status == JobStatus::kDone) {
    job.session->finalize(r);
  }
  const double done_us = now_us();
  r.preemptions = job.preemptions;
  r.slices = job.slices;
  r.last_worker = w;
  r.queue_seconds =
      job.first_us > 0.0 ? (job.first_us - job.submitted_us) * 1e-6 : 0.0;
  r.exec_seconds = job.exec_us * 1e-6;
  r.turnaround_seconds = (done_us - job.submitted_us) * 1e-6;
  results_.put(std::move(r));

  std::lock_guard<std::mutex> lock(farm_mu_);
  if (opt_.metrics) {
    opt_.metrics
        ->counter(status == JobStatus::kDone ? "farm.jobs.completed"
                                             : "farm.jobs.failed")
        .add();
    opt_.metrics->counter("farm.worker.jobs", worker_label(w)).add();
  }
  update_queue_gauges();
  TMSIM_CHECK_MSG(inflight_ > 0, "result published for an untracked job");
  --inflight_;
  if (inflight_ == 0) {
    idle_cv_.notify_all();
  }
}

}  // namespace tmsim::farm
