#include "des/kernel.h"

namespace tmsim::des {

SignalBase::SignalBase(Kernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {}

void SignalBase::request_update() {
  if (!update_requested_) {
    update_requested_ = true;
    kernel_.request_update(this);
  }
}

void SignalBase::notify_sensitive() {
  for (std::size_t pid : sensitive_) {
    kernel_.schedule(pid);
  }
}

std::size_t Kernel::add_process(std::function<void()> fn, std::string name) {
  processes_.push_back(Process{std::move(fn), std::move(name)});
  return processes_.size() - 1;
}

std::size_t Kernel::add_clocked_process(std::function<void()> fn,
                                        std::string name) {
  const std::size_t pid = add_process(std::move(fn), std::move(name));
  processes_[pid].is_clocked = true;
  clocked_.push_back(pid);
  return pid;
}

void Kernel::make_sensitive(std::size_t pid, SignalBase& sig) {
  TMSIM_CHECK_MSG(pid < processes_.size(), "unknown process id");
  sig.sensitive_.push_back(pid);
}

void Kernel::schedule(std::size_t pid) {
  Process& p = processes_[pid];
  if (!p.runnable) {
    p.runnable = true;
    runnable_.push_back(pid);
  }
}

void Kernel::request_update(SignalBase* sig) { update_queue_.push_back(sig); }

void Kernel::run_delta_loop() {
  std::size_t deltas = 0;
  while (!runnable_.empty() || !update_queue_.empty()) {
    TMSIM_CHECK_MSG(++deltas <= max_deltas_,
                    "combinational activity does not settle "
                    "(oscillating feedback?)");
    ++stats_.delta_cycles;
    // Evaluation phase: run everything runnable in this delta.
    std::vector<std::size_t> batch;
    batch.swap(runnable_);
    for (std::size_t pid : batch) {
      processes_[pid].runnable = false;
    }
    for (std::size_t pid : batch) {
      ++stats_.process_activations;
      processes_[pid].fn();
    }
    // Update phase: commit signal writes; changes notify for next delta.
    std::vector<SignalBase*> updates;
    updates.swap(update_queue_);
    for (SignalBase* sig : updates) {
      sig->update_requested_ = false;
      if (sig->commit()) {
        ++stats_.signal_commits;
        sig->notify_sensitive();
      }
    }
  }
}

void Kernel::initialize() {
  // Time-zero evaluation of the combinational processes only: register
  // processes must not fire before the first clock edge (SystemC's
  // dont_initialize() on edge-sensitive methods).
  for (std::size_t pid = 0; pid < processes_.size(); ++pid) {
    if (!processes_[pid].is_clocked) {
      schedule(pid);
    }
  }
  run_delta_loop();
}

void Kernel::tick() {
  ++stats_.ticks;
  for (std::size_t pid : clocked_) {
    schedule(pid);
  }
  run_delta_loop();
}

void Kernel::settle() { run_delta_loop(); }

}  // namespace tmsim::des
