// A discrete-event simulation kernel with SystemC's evaluate → update →
// delta-notify semantics — the substitute for the paper's SystemC 2.x
// baseline (§3, Table 3), since no SystemC installation is assumed.
//
// Model of computation (matches sc_signal / SC_METHOD at RT level):
//  - Signal<T>: single-writer-per-delta channel; write() stores a pending
//    value, committed in the update phase; a commit that *changes* the
//    value notifies statically sensitive processes.
//  - combinational processes (add_process + make_sensitive): run whenever
//    a signal they watch changes; all runnable processes of a delta run,
//    then all signal updates commit, then newly triggered processes form
//    the next delta.
//  - clocked processes (add_clocked_process): run once per tick(), before
//    the settle loop — the rising-edge sensitivity of an RTL register
//    process. They read pre-edge signal values (commits happen after the
//    whole evaluation phase).
//
// The kernel counts process activations, signal commits and delta cycles;
// Table 3's baseline cost is these counts × per-event kernel overhead,
// measured, not assumed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"

namespace tmsim::des {

class Kernel;

/// Untyped signal interface the kernel drives during the update phase.
class SignalBase {
 public:
  explicit SignalBase(Kernel& kernel, std::string name);
  virtual ~SignalBase() = default;
  SignalBase(const SignalBase&) = delete;
  SignalBase& operator=(const SignalBase&) = delete;

  const std::string& name() const { return name_; }

 protected:
  /// Commits the pending value; returns true when the stored value
  /// changed (which triggers sensitive processes).
  virtual bool commit() = 0;

  void request_update();
  void notify_sensitive();

  Kernel& kernel_;

 private:
  friend class Kernel;
  std::string name_;
  std::vector<std::size_t> sensitive_;  // process ids
  bool update_requested_ = false;
};

/// Statistics the baseline benchmarks report.
struct KernelStats {
  std::uint64_t ticks = 0;
  std::uint64_t delta_cycles = 0;
  std::uint64_t process_activations = 0;
  std::uint64_t signal_commits = 0;
};

class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Registers a combinational process (SC_METHOD with static
  /// sensitivity). Returns its id.
  std::size_t add_process(std::function<void()> fn, std::string name);

  /// Registers a clocked process (SC_METHOD sensitive to the rising
  /// clock edge).
  std::size_t add_clocked_process(std::function<void()> fn, std::string name);

  /// Makes combinational process `pid` sensitive to `sig`.
  void make_sensitive(std::size_t pid, SignalBase& sig);

  /// Runs every combinational process once and settles — SystemC's
  /// time-zero initialization. Call after elaboration, before tick().
  void initialize();

  /// One clock cycle: clocked processes evaluate, signals commit, then
  /// combinational deltas run until quiescent.
  void tick();

  /// Settle combinational activity only (used after the testbench pokes
  /// input signals between ticks).
  void settle();

  const KernelStats& stats() const { return stats_; }

  /// Caps runaway combinational feedback (default: plenty for RTL).
  void set_max_deltas_per_tick(std::size_t n) { max_deltas_ = n; }

 private:
  friend class SignalBase;
  struct Process {
    std::function<void()> fn;
    std::string name;
    bool runnable = false;
    bool is_clocked = false;
  };

  void schedule(std::size_t pid);
  void request_update(SignalBase* sig);
  void run_delta_loop();

  std::vector<Process> processes_;
  std::vector<std::size_t> clocked_;
  std::vector<std::size_t> runnable_;
  std::vector<SignalBase*> update_queue_;
  KernelStats stats_;
  std::size_t max_deltas_ = 10000;
};

/// Typed signal. T needs copy + operator==.
template <typename T>
class Signal : public SignalBase {
 public:
  Signal(Kernel& kernel, std::string name, T initial = T())
      : SignalBase(kernel, std::move(name)),
        current_(initial),
        pending_(std::move(initial)) {}

  /// Current (committed) value — what processes read.
  const T& read() const { return current_; }

  /// Schedules `v` for the next update phase. Last write in an
  /// evaluation phase wins (single writer by design discipline).
  void write(const T& v) {
    pending_ = v;
    request_update();
  }

 protected:
  bool commit() override {
    if (pending_ == current_) {
      return false;
    }
    current_ = pending_;
    return true;
  }

 private:
  T current_;
  T pending_;
};

}  // namespace tmsim::des
