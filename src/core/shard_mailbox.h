// Synchronization primitives of the sharded bulk-synchronous engine:
//
// ShardBarrier — a reusable counting barrier whose release also reduces
// a per-round contribution from every participant (sum). The sharded
// engine uses the reduction to agree, in one synchronization, on global
// facts like "how many blocks are still unstable anywhere?" or "did any
// shard diverge?" — every participant leaves the barrier with the same
// total, so every worker takes the same control-flow decision without a
// leader. Waiters spin briefly, then block on a futex
// (std::atomic::wait), so a barrier parked between system cycles costs
// no CPU — important when the host has fewer cores than shards.
//
// ShardMailbox — the boundary-link exchange. One slot per cut link,
// single writer (the shard that owns the link's writer block), versioned
// publishes. The engine's superstep protocol writes slots only between
// two barrier syncs and reads them only after the next sync, so the
// barrier provides the happens-before edge for the payload; the acquire/
// release version counter additionally makes every publish individually
// visible, which is what the "no lost HBR-clear" concurrency tests
// hammer on. A reader that polls with its last-seen version can never
// miss a change: versions only grow, and each publish bumps exactly one.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bit_vector.h"

namespace tmsim::core {

class ShardBarrier {
 public:
  explicit ShardBarrier(std::size_t participants);

  /// Blocks until all participants have called sync() for this round;
  /// returns the sum of every participant's `contribution`. All callers
  /// of one round receive the same sum. When `spins` is non-null the
  /// caller's spin-loop iteration count is added to it (barrier-wait
  /// accounting for the observability layer; 0 for the last arriver).
  std::uint64_t sync(std::uint64_t contribution,
                     std::uint64_t* spins = nullptr);

  std::size_t participants() const { return participants_; }

 private:
  const std::size_t participants_;
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
  // Written by the releasing (last) participant before it bumps
  // generation_, read by the others after they observe the bump — the
  // release/acquire pair on generation_ orders both accesses.
  std::uint64_t result_ = 0;
};

class ShardMailbox {
 public:
  /// One slot per boundary link; `widths[i]` is slot i's value width.
  explicit ShardMailbox(const std::vector<std::size_t>& widths);

  std::size_t num_slots() const { return num_slots_; }

  /// Publishes a new value (single designated producer per slot; at most
  /// one producer thread may touch a slot between two barrier rounds).
  void publish(std::size_t slot, const BitVector& value);

  /// Monotonic publish count of the slot.
  std::uint64_t version(std::size_t slot) const;

  /// Consumer poll: when the slot's version is ahead of `last_seen`,
  /// copies the value into `out`, advances `last_seen` and returns true.
  /// Must only be called in a protocol phase where the producer is
  /// quiescent (after a barrier sync).
  bool poll(std::size_t slot, std::uint64_t& last_seen, BitVector& out) const;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> version{0};
    BitVector value{0};
  };

  std::size_t num_slots_ = 0;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace tmsim::core
