// RouterBlock: the case-study router packaged as a SimBlock, and
// SeqNocSimulation: the whole NoC wired into a SystemModel and executed by
// the SequentialSimulator — i.e. the paper's FPGA simulator architecture
// expressed over the core engine.
//
// Port convention of RouterBlock:
//   inputs  0..4 — forward link arriving at input port p (21 bits)
//   inputs  5..8 — credit wires arriving for output ports NORTH..WEST
//                  (num_vcs bits each)
//   outputs 0..4 — forward link driven from output port p (21 bits)
//   outputs 5..8 — credit wires returned upstream for input ports
//                  NORTH..WEST (num_vcs bits each)
//   output  9    — credit wires for the local input queues (to the NI)
//
// The local *output* port's credit return is not a link: the network
// interface consumes delivered flits unconditionally (the FPGA's output
// cyclic buffer always accepts, §5.2), so the echo credit is computed
// inside evaluate() — the stimuli interface is evaluated in the same delta
// cycle as its router, exactly as in the FPGA where both live in one
// state-memory word (Table 1 counts stimuli-interface registers in the
// router's 2112 bits).
//
// All inter-router links are combinational (§4.2). Block state is the
// serialized RouterState word; evaluation deserializes the old word, runs
// the shared router logic (G and F together, one delta cycle), and
// serializes the new word — the exact data path of the FPGA's router block
// between its state-memory read and write (§5.2).
#pragma once

#include <memory>
#include <vector>

#include "core/partition.h"
#include "core/sequential_simulator.h"
#include "core/sim_block.h"
#include "core/system_model.h"
#include "noc/network.h"

namespace tmsim::core {

class RouterBlock : public SimBlock {
 public:
  /// `codec` is shared across all routers of a homogeneous network (one
  /// logic implementation, many state words — the paper's F'_{i,j}).
  RouterBlock(std::shared_ptr<const noc::RouterStateCodec> codec,
              noc::RouterEnv env);

  std::size_t state_width() const override;
  std::size_t num_inputs() const override { return 9; }
  std::size_t input_width(std::size_t port) const override;
  std::size_t num_outputs() const override { return 10; }
  std::size_t output_width(std::size_t port) const override;
  BitVector reset_state() const override;
  void evaluate(const BitVector& old_state,
                std::span<const BitVector> inputs, BitVector& new_state,
                std::span<BitVector> outputs) const override;
  std::string type_name() const override { return "noc_router"; }

  /// §4.2 Fig. 4: every router output — forwarded flits, credit returns,
  /// local delivery, the NI echo credit — is G(state): computed from the
  /// registered state word alone (compute_grants / compute_outputs take
  /// only the decoded state). Inputs feed F (next state) exclusively, so
  /// the static schedule may cut every in→out edge; this is what makes
  /// the NoC's combinational link graph acyclic at build time.
  bool output_depends_on_input(std::size_t, std::size_t) const override {
    return false;
  }

  const noc::RouterEnv& env() const { return env_; }

 private:
  std::shared_ptr<const noc::RouterStateCodec> codec_;
  noc::RouterEnv env_;
  // Scratch state reused across evaluations (the FPGA works on one wide
  // word in place; mallocing per delta cycle would misstate the method's
  // host-side cost). evaluate() stays pure — these hold no information
  // across calls — but it is not re-entrant: engines are single-threaded.
  mutable noc::RouterState scratch_old_;
  mutable noc::RouterState scratch_new_;
};

/// The SystemModel of a whole NoC plus its external link handles.
struct NocModel {
  SystemModel model;
  // Per router index:
  std::vector<LinkId> local_fwd_in;      ///< testbench → router (21 bits)
  std::vector<LinkId> local_fwd_out;     ///< router → testbench (21 bits)
  std::vector<LinkId> local_credit_out;  ///< router → testbench: credits
                                         ///< for the local input queues
};

/// Builds one RouterBlock per router and wires every inter-router forward
/// and credit group as a combinational link; local-port links are external.
/// `net` must outlive the returned model (RouterBlocks keep a pointer).
NocModel build_noc_model(const noc::NetworkConfig& net);

/// Engine selection for the NoC facade. num_shards == 1 runs the
/// sequential engine (the paper's method); > 1 runs the sharded
/// bulk-synchronous engine over the same model — bit-identical results,
/// enforced by tests/integration/sharded_equivalence_test.cpp.
struct EngineOptions {
  SchedulePolicy policy = SchedulePolicy::kDynamic;
  std::size_t num_shards = 1;
  PartitionPolicy partition = PartitionPolicy::kMinCutGreedy;
  /// Dynamic-schedule seed (see schedule_rr_offset). Seed 1 is canonical;
  /// other values rotate the round-robin cursor — results are identical
  /// by the engine contract, only StepStats can move.
  std::uint64_t seed = 1;
  /// Non-stable-block pickup within the dynamic schedule: the dense
  /// round-robin sweep (reference) or the event-driven worklist with the
  /// quiescence fast path. Bit-identical results either way.
  SchedulerKind scheduler = SchedulerKind::kRoundRobin;

  friend bool operator==(const EngineOptions&, const EngineOptions&) = default;
};

/// NocSimulation facade over a core engine (sequential by default).
class SeqNocSimulation : public noc::NocSimulation {
 public:
  explicit SeqNocSimulation(const noc::NetworkConfig& net,
                            SchedulePolicy policy = SchedulePolicy::kDynamic);
  SeqNocSimulation(const noc::NetworkConfig& net, const EngineOptions& opts);

  const noc::NetworkConfig& config() const override { return net_; }
  void set_local_input(std::size_t r, const noc::LinkForward& f) override;
  void step() override;
  noc::LinkForward local_output(std::size_t r) const override;
  noc::CreditWires local_input_credits(std::size_t r) const override;
  BitVector router_state_word(std::size_t r) const override;
  SystemCycle cycle() const override { return sim_->cycle(); }

  /// Engine access for delta-cycle statistics (§6) and white-box tests.
  const Engine& engine() const { return *sim_; }
  const StepStats& last_step_stats() const { return last_stats_; }
  /// Cumulative delta cycles since power-on/restore — sampled before and
  /// after a run slice this yields the slice's convergence cost, which
  /// the farm attaches to its `farm.slice` trace spans (DESIGN.md §15).
  DeltaCycle total_delta_cycles() const { return sim_->total_delta_cycles(); }

  /// Observability (DESIGN.md §10): attaches a SimObserver to the
  /// underlying engine. nullptr detaches; only call between step()s.
  void set_observer(SimObserver* obs) { sim_->set_observer(obs); }

  /// Session checkpointing (DESIGN.md §11). checkpoint() snapshots the
  /// committed router states between steps; restore() loads a snapshot —
  /// possibly taken from a *different* SeqNocSimulation over an equal
  /// NetworkConfig, even one running the other engine — verifies its
  /// digest, rebases the cycle counters, and idles every local input so
  /// no stale stimulus from the previous tenant leaks into the first
  /// resumed cycle. reset() returns the simulation to power-on state for
  /// reuse by the next job.
  EngineCheckpoint checkpoint() const { return save_checkpoint(*sim_); }
  void restore(const EngineCheckpoint& ck);
  void reset();

 private:
  void idle_all_inputs();
  noc::NetworkConfig net_;
  NocModel noc_;
  std::unique_ptr<Engine> sim_;
  StepStats last_stats_;
  std::vector<std::size_t> dirty_inputs_;
};

}  // namespace tmsim::core
