// SequentialSimulator: the paper's core contribution (§4) — simulate a
// parallel synchronous system by evaluating its partitions one at a time.
//
// Terminology (§4): a *system cycle* is one clock cycle of the simulated
// parallel design; a *delta cycle* is one block evaluation in the
// sequential simulator and does not advance simulated time. A system
// cycle consists of at least num_blocks delta cycles.
//
// Three schedules:
//
//  - kStatic (§4.1, Fig. 3): legal only when every internal boundary is
//    registered. One pass over the blocks in arbitrary order; readers
//    consume previous-cycle values from the old bank. Exactly num_blocks
//    delta cycles per system cycle.
//
//  - kDynamic (§4.2, Fig. 5): the paper's method for combinational
//    boundaries. All HBR bits are cleared at the start of the system
//    cycle (so every block is evaluated at least once); a round-robin
//    scheduler evaluates non-stable blocks; writing a *changed* value to a
//    link clears its HBR bit and destabilizes its reader; the cycle ends
//    when all blocks are stable.
//
//  - kTwoPhaseOracle: an ablation, not in the paper. It exploits the fact
//    that the case-study router's outputs depend on registered state only:
//    pass 1 evaluates every block against stale links to publish outputs,
//    pass 2 re-evaluates every block with final links. Exactly 2×num_blocks
//    delta cycles — a design-specific upper bound the generic HBR schedule
//    must beat or match on real traffic (bench/ablation_schedules).
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/static_schedule.h"
#include "common/bit_vector.h"
#include "common/error.h"
#include "common/types.h"
#include "core/engine.h"
#include "core/link_memory.h"
#include "core/state_memory.h"
#include "core/system_model.h"

namespace tmsim::core {

class SequentialSimulator : public Engine {
 public:
  /// `max_evals_per_block` bounds re-evaluation; exceeding it means the
  /// netlist contains a combinational cycle that does not settle, which
  /// is reported as an Error rather than an infinite loop.
  /// `schedule_seed` rotates the dynamic schedule's starting round-robin
  /// cursor (seed 1 = the canonical cursor 0 used throughout the paper
  /// reproduction). Committed results are schedule-independent by the
  /// engine contract, so the seed can never change what a workload
  /// observes — only the order (and count) of delta cycles.
  /// `scheduler` selects how the dynamic schedule picks non-stable
  /// blocks (SchedulerKind); kWorklist rejects degenerate topologies via
  /// check_scheduler_topology and is bit-identical to the reference
  /// kRoundRobin otherwise.
  SequentialSimulator(const SystemModel& model, SchedulePolicy policy,
                      std::size_t max_evals_per_block = 64,
                      std::uint64_t schedule_seed = 1,
                      SchedulerKind scheduler = SchedulerKind::kRoundRobin);

  /// Drives an external-input link (takes effect for the next step()).
  void set_external_input(LinkId link, const BitVector& value) override;

  /// Current reader-visible value of any link. For combinational links
  /// this is the value driven during the last step(); for registered
  /// links, the value committed at its clock edge.
  const BitVector& link_value(LinkId link) const override;

  /// Old-bank (committed) state of a block.
  const BitVector& block_state(BlockId block) const override;

  /// Overwrites a block's committed state (reset preloading, testing).
  void load_block_state(BlockId block, const BitVector& value) override;

  /// Overwrites a link's reader-visible value (checkpoint restore).
  void load_link_value(LinkId link, const BitVector& value) override;

  /// Simulates one system cycle.
  StepStats step() override;

  SystemCycle cycle() const override { return cycle_; }
  DeltaCycle total_delta_cycles() const override {
    return total_delta_cycles_;
  }
  SchedulePolicy policy() const override { return policy_; }
  SchedulerKind scheduler() const { return scheduler_; }
  void rebase(SystemCycle cycle, DeltaCycle total_deltas) override;
  SchedulerCheckpoint scheduler_checkpoint() const override;
  void restore_scheduler_state(const SchedulerCheckpoint& sched) override;

  /// The build-time schedule (kCompiled only; empty otherwise) — exposed
  /// for tests and the schedule-inspection tooling.
  const analysis::CompiledSchedule* compiled_schedule() const {
    return compiled_ ? &*compiled_ : nullptr;
  }

  const SystemModel& model() const override { return model_; }
  const StateMemory& state_memory() const { return state_; }
  const LinkMemory& link_memory() const { return links_; }

  /// Called once per delta cycle with (system cycle, delta index within
  /// the cycle, evaluated block) — used by the Fig. 3 / Fig. 5 schedule
  /// trace benches.
  using TraceHook = std::function<void(SystemCycle, DeltaCycle, BlockId)>;
  void set_trace_hook(TraceHook hook) { trace_ = std::move(hook); }

 private:
  friend class SequentialSimulatorTestPeer;

  /// Settle context threaded through compiled-mode evaluations while a
  /// CompiledScc runs its scoped worklist.
  struct SettleCtx {
    const analysis::CompiledScc* scc = nullptr;
    std::uint32_t scc_id = 0;      ///< scc index + 1 (scc_of_link encoding)
    std::vector<char>* unstable = nullptr;  ///< per SCC member
    std::size_t* remaining = nullptr;
  };

  void evaluate_block(BlockId b, StepStats& stats);
  void evaluate_block_compiled(BlockId b, StepStats& stats,
                               const SettleCtx* ctx);
  void destabilize(BlockId b);
  bool inputs_all_read(BlockId b) const;
  void begin_eval_accounting();
  void note_first_eval(BlockId b);
  StepStats step_static();
  StepStats step_dynamic();
  StepStats step_dynamic_worklist();
  StepStats step_compiled();
  void settle_scc(std::uint32_t scc_index, StepStats& stats);
  StepStats step_two_phase();
  void end_of_cycle();
  [[noreturn]] void fail_convergence(const StepStats& stats,
                                     DeltaCycle limit);

  const SystemModel& model_;
  SchedulePolicy policy_;
  std::size_t max_evals_per_block_;
  SchedulerKind scheduler_;
  StateMemory state_;
  LinkMemory links_;
  SystemCycle cycle_ = 0;
  DeltaCycle total_delta_cycles_ = 0;
  TraceHook trace_;

  ConvergenceReport make_convergence_report(const StepStats& stats,
                                            DeltaCycle limit) const;

  // Dynamic-schedule bookkeeping. `unstable_` doubles as the worklist's
  // dedup flag: a block is on the FIFO iff its flag is set.
  std::vector<char> unstable_;
  std::size_t unstable_count_ = 0;
  std::size_t rr_next_ = 0;
  std::size_t rr_init_ = 0;  ///< seeded cursor; canonical restore target

  // First-evaluation accounting (explicit, per cycle): re_evaluations =
  // delta_cycles - first_evals_, computed the same way under every
  // scheduler so a cycle that throws mid-settle can never underflow it.
  std::vector<char> evaluated_;
  std::size_t first_evals_ = 0;

  // Compiled-schedule runtime (kCompiled only).
  std::optional<analysis::CompiledSchedule> compiled_;
  std::vector<char> scc_unstable_;  // scratch, sized per settling SCC

  // Worklist-scheduler bookkeeping (empty under kRoundRobin).
  std::vector<BlockId> worklist_;   // FIFO; consumed prefix [0, wl_head_)
  std::size_t wl_head_ = 0;
  std::vector<char> skippable_;     // static: all links combinational
  std::vector<char> state_fixed_;   // last committed eval was old==new
  std::vector<char> pending_input_; // input changed since last eval
  std::uint64_t wl_high_water_ = 0;
  // Bounded history of changed links, for convergence diagnostics.
  static constexpr std::size_t kChangedLinkHistory = 8;
  std::array<LinkId, kChangedLinkHistory> recent_changed_links_{};
  std::size_t recent_changed_count_ = 0;

  // Scratch buffers reused across evaluations (hot path).
  std::vector<BitVector> in_scratch_;
  std::vector<BitVector> out_scratch_;
  BitVector state_scratch_;
};

}  // namespace tmsim::core
