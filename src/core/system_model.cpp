#include "core/system_model.h"

namespace tmsim::core {

namespace {
constexpr std::size_t kUnbound = std::numeric_limits<std::size_t>::max();
}

BlockId SystemModel::add_block(std::shared_ptr<const SimBlock> logic,
                               std::string name) {
  TMSIM_CHECK_MSG(!finalized_, "model already finalized");
  TMSIM_CHECK_MSG(logic != nullptr, "null block logic");
  BlockInstance inst;
  inst.name = std::move(name);
  inst.input_links.assign(logic->num_inputs(), kUnbound);
  inst.output_links.assign(logic->num_outputs(), kUnbound);
  inst.logic = std::move(logic);
  blocks_.push_back(std::move(inst));
  return blocks_.size() - 1;
}

LinkId SystemModel::add_link(std::string name, std::size_t width,
                             LinkKind kind) {
  TMSIM_CHECK_MSG(!finalized_, "model already finalized");
  TMSIM_CHECK_MSG(width >= 1, "link width must be positive");
  LinkInfo info;
  info.name = std::move(name);
  info.width = width;
  info.kind = kind;
  links_.push_back(std::move(info));
  return links_.size() - 1;
}

void SystemModel::bind_output(BlockId block, std::size_t port, LinkId link) {
  TMSIM_CHECK_MSG(!finalized_, "model already finalized");
  BlockInstance& b = blocks_.at(block);
  LinkInfo& l = links_.at(link);
  TMSIM_CHECK_MSG(port < b.output_links.size(), "output port out of range");
  TMSIM_CHECK_MSG(b.output_links[port] == kUnbound,
                  "output port already bound");
  TMSIM_CHECK_MSG(!l.writer.has_value(),
                  "link '" + l.name + "' already has a writer");
  TMSIM_CHECK_MSG(b.logic->output_width(port) == l.width,
                  "output width mismatch on link '" + l.name + "'");
  b.output_links[port] = link;
  l.writer = Endpoint{block, port};
}

void SystemModel::bind_input(BlockId block, std::size_t port, LinkId link) {
  TMSIM_CHECK_MSG(!finalized_, "model already finalized");
  BlockInstance& b = blocks_.at(block);
  LinkInfo& l = links_.at(link);
  TMSIM_CHECK_MSG(port < b.input_links.size(), "input port out of range");
  TMSIM_CHECK_MSG(b.input_links[port] == kUnbound, "input port already bound");
  TMSIM_CHECK_MSG(b.logic->input_width(port) == l.width,
                  "input width mismatch on link '" + l.name + "'");
  b.input_links[port] = link;
  l.readers.push_back(Endpoint{block, port});
}

void SystemModel::finalize() {
  TMSIM_CHECK_MSG(!finalized_, "model already finalized");
  for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
    const BlockInstance& b = blocks_[bi];
    for (std::size_t p = 0; p < b.input_links.size(); ++p) {
      TMSIM_CHECK_MSG(b.input_links[p] != kUnbound,
                      "block '" + b.name + "' input port unbound");
    }
    for (std::size_t p = 0; p < b.output_links.size(); ++p) {
      TMSIM_CHECK_MSG(b.output_links[p] != kUnbound,
                      "block '" + b.name + "' output port unbound");
    }
  }
  for (const LinkInfo& l : links_) {
    if (l.kind == LinkKind::kCombinational) {
      // One HBR bit per link implies a single reader (§4.2); fan-out is
      // modeled as several links driven by duplicated output ports.
      TMSIM_CHECK_MSG(l.readers.size() <= 1,
                      "combinational link '" + l.name +
                          "' has multiple readers");
    }
  }
  finalized_ = true;
}

bool SystemModel::all_boundaries_registered() const {
  for (const LinkInfo& l : links_) {
    if (l.kind == LinkKind::kCombinational && l.writer.has_value() &&
        !l.readers.empty()) {
      return false;
    }
  }
  return true;
}

}  // namespace tmsim::core
