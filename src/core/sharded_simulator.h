// ShardedSimulator: a bulk-synchronous parallel engine over the same
// SystemModel the SequentialSimulator executes — the paper's §4 engine
// with the parallelism put back (Manticore's static bulk-synchronous
// style, with the partition chosen by src/core/partition.h).
//
// The model's blocks are split into N shards; one worker thread runs
// each shard (the constructing thread doubles as shard 0's worker).
// Every shard owns a shard-local double-banked StateMemory and a
// shard-local LinkMemory materializing exactly the links its blocks
// touch. Cut links are *mirrored*: the writer's shard keeps the
// authoritative copy (for change detection), the reader's shard keeps a
// replica (for evaluation and its HBR bit), and the two are reconciled
// through a versioned single-writer mailbox slot at every delta-cycle
// barrier.
//
// One system cycle of the dynamic (§4.2) schedule is a sequence of
// *supersteps*:
//
//   phase A  every shard round-robins over its non-stable blocks until
//            locally stable, publishing changed cut-link values;
//   barrier  (also agrees "did anyone diverge?");
//   phase B  every shard polls its incoming slots; a changed value is
//            written to the replica, the replica's HBR bit is cleared
//            and the reading block destabilized — exactly the §4.2 rule,
//            one superstep late;
//   barrier  (agrees "how many blocks are unstable anywhere?"),
//
// repeated until the global count is zero. HBR convergence semantics
// are preserved exactly: a block is re-evaluated whenever any input
// changed after it last read it (locally at once, across shards at the
// next superstep), and the cycle ends only when no link anywhere
// changed and every block is stable. The final link fixed point — and
// therefore every register bit — is the one the sequential engine
// reaches, for any schedule policy; tests/integration/
// sharded_equivalence_test.cpp enforces this differentially. Only
// StepStats may differ (the schedules do different amounts of
// re-evaluation work).
//
// Divergence (an oscillating combinational loop) is detected
// cooperatively: per-shard evaluation budgets and a superstep bound are
// reduced through the barrier so every worker abandons the cycle at the
// same point, and step() throws the same ConvergenceError the
// sequential engine would, with the shards' reports merged.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "analysis/static_schedule.h"
#include "core/engine.h"
#include "core/link_memory.h"
#include "core/partition.h"
#include "core/shard_mailbox.h"
#include "core/state_memory.h"

namespace tmsim::core {

struct ShardedConfig {
  /// Worker count; clamped to the model's block count. 1 degenerates to
  /// the sequential engine's behaviour on the calling thread.
  std::size_t num_shards = 1;
  PartitionPolicy partition = PartitionPolicy::kMinCutGreedy;
  SchedulePolicy schedule = SchedulePolicy::kDynamic;
  /// Per-cycle evaluation budget per block and superstep bound;
  /// exceeding either means a non-settling combinational loop.
  std::size_t max_evals_per_block = 64;
  /// Rotates each shard's starting round-robin cursor (dynamic
  /// schedule). Seed 1 is canonical (cursor 0 everywhere); results are
  /// schedule-independent, so this can only change StepStats.
  std::uint64_t schedule_seed = 1;
  /// Non-stable-block pickup within phase A of each superstep:
  /// kRoundRobin is the dense §4.2 sweep, kWorklist the event-driven
  /// scheduler with the quiescence fast path, kCompiled a per-shard
  /// build-time static schedule (cut links are treated as registered
  /// edges: each superstep re-runs the full shard schedule against the
  /// latest replica values until the exchange reports quiescence).
  /// Bit-identical results in every case; only StepStats may differ.
  SchedulerKind scheduler = SchedulerKind::kRoundRobin;
};

class ShardedSimulator : public Engine {
 public:
  ShardedSimulator(const SystemModel& model, const ShardedConfig& cfg);
  ~ShardedSimulator() override;

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  void set_external_input(LinkId link, const BitVector& value) override;
  const BitVector& link_value(LinkId link) const override;
  const BitVector& block_state(BlockId block) const override;
  void load_block_state(BlockId block, const BitVector& value) override;
  void load_link_value(LinkId link, const BitVector& value) override;
  StepStats step() override;
  SchedulerCheckpoint scheduler_checkpoint() const override;
  void restore_scheduler_state(const SchedulerCheckpoint& sched) override;

  SystemCycle cycle() const override { return cycle_; }
  DeltaCycle total_delta_cycles() const override {
    return total_delta_cycles_;
  }
  SchedulePolicy policy() const override { return cfg_.schedule; }
  SchedulerKind scheduler() const { return cfg_.scheduler; }
  void rebase(SystemCycle cycle, DeltaCycle total_deltas) override;
  const SystemModel& model() const override { return model_; }

  std::size_t num_shards() const { return part_.num_shards(); }
  const Partition& partition() const { return part_; }
  /// Cut links (== mailbox slots) under the active partition.
  std::size_t num_boundary_links() const { return boundary_links_; }
  /// Barrier-separated supersteps executed so far (at least one per
  /// system cycle; each superstep is a settle + exchange round).
  std::uint64_t total_supersteps() const { return total_supersteps_; }

 private:
  struct InSlot {
    LinkId link = 0;
    std::size_t slot = 0;
    std::uint64_t last_seen = 0;
    LinkKind kind = LinkKind::kCombinational;
  };

  struct Shard {
    std::size_t index = 0;
    std::vector<BlockId> blocks;      // global ids
    StateMemory state;                // indexed by local block index
    LinkMemory links;                 // global LinkIds, subset-materialized
    std::vector<InSlot> incoming;     // cut links read by this shard

    // Dynamic-schedule bookkeeping (local block indices). `unstable`
    // doubles as the worklist's dedup flag under kWorklist.
    std::vector<char> unstable;
    std::size_t unstable_count = 0;
    std::size_t rr_next = 0;
    std::size_t rr_init = 0;  // seeded cursor; canonical restore target

    // First-evaluation accounting (per cycle): the coordinator computes
    // re_evaluations = Σ delta_cycles - Σ first_evals, identically under
    // every scheduler, so a cycle abandoned mid-settle cannot underflow.
    std::vector<char> evaluated;
    std::size_t first_evals = 0;

    // Per-shard build-time schedule (kCompiled only): the model's link
    // graph restricted to this shard's blocks. Cut links fall out of the
    // tracked set (one endpoint is elsewhere), so the schedule treats
    // them exactly like registered edges — pre-final for the superstep.
    std::optional<analysis::CompiledSchedule> compiled;
    std::vector<char> scc_unstable;  // scratch, sized per settling SCC

    // Worklist-scheduler bookkeeping (local indices; empty under
    // kRoundRobin). The FIFO persists across the cycle's supersteps:
    // phase B pushes cross-shard events onto it for the next phase A.
    std::vector<std::size_t> worklist;  // consumed prefix [0, wl_head)
    std::size_t wl_head = 0;
    std::vector<char> skippable;        // static: all links combinational
    std::vector<char> state_fixed;      // last committed eval: old == new
    std::vector<char> pending_input;    // input changed since last eval

    // Per-cycle outcome, read by the coordinator after the final barrier.
    StepStats stats;
    bool diverged = false;
    bool cycle_failed = false;
    std::size_t supersteps = 0;
    std::exception_ptr error;
    ConvergenceReport report;
    // Wall-clock mark for observer superstep timing (worker-local).
    std::uint64_t mark_ns = 0;

    // Scratch reused across evaluations (hot path).
    std::vector<BitVector> in_scratch;
    std::vector<BitVector> out_scratch;
    BitVector state_scratch{0};
    BitVector poll_scratch{0};
    static constexpr std::size_t kChangedLinkHistory = 8;
    std::array<LinkId, kChangedLinkHistory> recent_changed_links{};
    std::size_t recent_changed_count = 0;

    Shard(std::size_t idx, std::vector<BlockId> blks,
          std::vector<std::size_t> widths, const SystemModel& model,
          const std::vector<char>& materialize)
        : index(idx),
          blocks(std::move(blks)),
          state(widths),
          links(model, materialize) {}
  };

  /// Settle context threaded through compiled-mode evaluations while a
  /// CompiledScc runs its scoped worklist (see SequentialSimulator).
  struct CompiledSettleCtx {
    const analysis::CompiledScc* scc = nullptr;
    std::uint32_t scc_id = 0;  ///< scc index + 1 (scc_of_link encoding)
    std::vector<char>* unstable = nullptr;  ///< per SCC member
    std::size_t* remaining = nullptr;
  };

  void worker_main(std::size_t s);
  void run_cycle(std::size_t s);
  void cycle_static(Shard& sh);
  void cycle_dynamic(Shard& sh);
  void cycle_compiled(Shard& sh);
  void cycle_two_phase(Shard& sh);
  void evaluate_block(Shard& sh, std::size_t local);
  void evaluate_block_compiled(Shard& sh, std::size_t local,
                               const CompiledSettleCtx* ctx);
  void run_compiled_schedule(Shard& sh);
  void settle_scc_local(Shard& sh, std::uint32_t scc_index);
  void settle_local(Shard& sh);
  void settle_local_worklist(Shard& sh);
  void seed_worklist_cycle(Shard& sh);
  void evaluate_all_local(Shard& sh);
  void apply_incoming(Shard& sh);
  void destabilize_local(Shard& sh, BlockId global);
  bool inputs_all_read(const Shard& sh, BlockId global) const;
  void fill_report(Shard& sh);
  template <typename F>
  void guarded(Shard& sh, F&& f);
  /// Two aligned barrier syncs shared by every schedule: agree on
  /// failure after the evaluation phase, then exchange and agree on
  /// global instability. Returns false when the cycle must be abandoned.
  bool exchange_round(Shard& sh);

  const SystemModel& model_;
  ShardedConfig cfg_;
  Partition part_;
  std::size_t boundary_links_ = 0;
  std::vector<std::size_t> local_of_;       // global block -> local index
  std::vector<std::size_t> link_home_;      // link -> authoritative shard
  std::vector<std::vector<std::size_t>> link_shards_;  // link -> replicas
  std::vector<std::size_t> slot_of_link_;   // link -> mailbox slot (or npos)

  std::unique_ptr<ShardMailbox> mailbox_;
  std::unique_ptr<ShardBarrier> barrier_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;
  bool stop_ = false;

  SystemCycle cycle_ = 0;
  DeltaCycle total_delta_cycles_ = 0;
  std::uint64_t total_supersteps_ = 0;
};

}  // namespace tmsim::core
