#include "core/noc_block.h"

#include <string>

#include "core/sharded_simulator.h"

namespace tmsim::core {

using noc::kForwardBits;
using noc::kPorts;
using noc::Port;

RouterBlock::RouterBlock(std::shared_ptr<const noc::RouterStateCodec> codec,
                         noc::RouterEnv env)
    : codec_(std::move(codec)),
      env_(env),
      scratch_old_(codec_ ? codec_->config() : noc::RouterConfig{}),
      scratch_new_(codec_ ? codec_->config() : noc::RouterConfig{}) {
  TMSIM_CHECK_MSG(codec_ != nullptr, "null codec");
  TMSIM_CHECK_MSG(env_.net != nullptr, "null network config");
}

std::size_t RouterBlock::state_width() const { return codec_->state_bits(); }

std::size_t RouterBlock::input_width(std::size_t port) const {
  TMSIM_CHECK_MSG(port < num_inputs(), "input port out of range");
  return port < kPorts ? kForwardBits : codec_->config().num_vcs;
}

std::size_t RouterBlock::output_width(std::size_t port) const {
  TMSIM_CHECK_MSG(port < num_outputs(), "output port out of range");
  return port < kPorts ? kForwardBits : codec_->config().num_vcs;
}

BitVector RouterBlock::reset_state() const { return codec_->reset_word(); }

void RouterBlock::evaluate(const BitVector& old_state,
                           std::span<const BitVector> inputs,
                           BitVector& new_state,
                           std::span<BitVector> outputs) const {
  const std::size_t num_vcs = codec_->config().num_vcs;
  codec_->deserialize_into(old_state, scratch_old_);
  const noc::RouterState& s = scratch_old_;

  noc::RouterInputs in;
  for (std::size_t p = 0; p < kPorts; ++p) {
    in.fwd_in[p] = noc::decode_forward(
        static_cast<std::uint32_t>(inputs[p].get_field(0, kForwardBits)));
  }
  // Credit inputs for the four grid output ports (NORTH..WEST).
  for (std::size_t o = 1; o < kPorts; ++o) {
    in.credit_in[o] = noc::decode_credit(
        static_cast<std::uint32_t>(inputs[kPorts + o - 1].get_field(0, num_vcs)),
        num_vcs);
  }

  const noc::Grants grants = noc::compute_grants(s, env_);
  const noc::RouterOutputs out = noc::compute_outputs(s, grants, env_);

  // Local NI echo: a flit delivered on the local output is consumed
  // unconditionally, returning its credit in the same cycle.
  const noc::LinkForward& delivered =
      out.fwd_out[static_cast<std::size_t>(Port::kLocal)];
  if (delivered.valid) {
    in.credit_in[static_cast<std::size_t>(Port::kLocal)].set(delivered.vc);
  }

  noc::compute_next_state_into(s, grants, in, env_, scratch_new_);
  codec_->serialize_into(scratch_new_, new_state);

  for (std::size_t o = 0; o < kPorts; ++o) {
    outputs[o].set_field(0, kForwardBits, noc::encode_forward(out.fwd_out[o]));
  }
  for (std::size_t p = 1; p < kPorts; ++p) {
    outputs[kPorts + p - 1].set_field(0, num_vcs,
                                      noc::encode_credit(out.credit_out[p]));
  }
  outputs[9].set_field(
      0, num_vcs,
      noc::encode_credit(out.credit_out[static_cast<std::size_t>(Port::kLocal)]));
}

NocModel build_noc_model(const noc::NetworkConfig& net) {
  net.validate();
  NocModel nm;
  const std::size_t n = net.num_routers();
  const std::size_t num_vcs = net.router.num_vcs;
  auto codec = std::make_shared<const noc::RouterStateCodec>(net.router);

  for (std::size_t r = 0; r < n; ++r) {
    nm.model.add_block(
        std::make_shared<RouterBlock>(codec,
                                      noc::RouterEnv{&net, router_coord(net, r)}),
        "router" + std::to_string(r));
  }

  const auto rname = [](std::size_t r) { return "r" + std::to_string(r); };

  // Forward links: one per router output port. Grid ports connect to the
  // facing neighbour; unconnected mesh-boundary ports get dangling links
  // (driven, observed by nobody). The facing neighbour's matching input
  // port on a boundary is left as an external input link that is never
  // driven — it reads as the all-zero idle encoding.
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t o = 1; o < kPorts; ++o) {
      const auto port = static_cast<Port>(o);
      const LinkId fwd = nm.model.add_link(
          rname(r) + ".fwd." + noc::port_name(port), kForwardBits,
          LinkKind::kCombinational);
      nm.model.bind_output(r, o, fwd);
      const noc::UpstreamPort down = noc::upstream_of(net, r, port);
      if (down.connected) {
        // Our output port `o` feeds the neighbour's input port facing
        // back at us — which is `down.port` (== opposite(o)).
        nm.model.bind_input(down.router, static_cast<std::size_t>(down.port),
                            fwd);
      }
    }
  }

  // Credit links: one per router grid *input* port, driven back upstream.
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t p = 1; p < kPorts; ++p) {
      const auto port = static_cast<Port>(p);
      const LinkId cr = nm.model.add_link(
          rname(r) + ".credit." + noc::port_name(port), num_vcs,
          LinkKind::kCombinational);
      nm.model.bind_output(r, kPorts + p - 1, cr);
      const noc::UpstreamPort up = noc::upstream_of(net, r, port);
      if (up.connected) {
        // The router driving our input port p receives our credits on its
        // credit-in port for its output port `up.port`.
        nm.model.bind_input(up.router,
                            kPorts + static_cast<std::size_t>(up.port) - 1, cr);
      }
    }
  }

  // Tie off unconnected grid input ports (mesh boundaries, degenerate
  // torus dimensions): external links that are never driven read as the
  // all-zero idle encoding.
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t p = 1; p < kPorts; ++p) {
      const auto port = static_cast<Port>(p);
      if (!noc::upstream_of(net, r, port).connected) {
        const LinkId fwd = nm.model.add_link(
            rname(r) + ".fwd." + noc::port_name(port) + ".tieoff",
            kForwardBits, LinkKind::kCombinational);
        nm.model.bind_input(r, p, fwd);
        const LinkId cr = nm.model.add_link(
            rname(r) + ".credit." + noc::port_name(port) + ".tieoff",
            num_vcs, LinkKind::kCombinational);
        nm.model.bind_input(r, kPorts + p - 1, cr);
      }
    }
  }

  // Local-port external links.
  nm.local_fwd_in.resize(n);
  nm.local_fwd_out.resize(n);
  nm.local_credit_out.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    nm.local_fwd_in[r] = nm.model.add_link(rname(r) + ".fwd.local_in",
                                           kForwardBits,
                                           LinkKind::kCombinational);
    nm.model.bind_input(r, static_cast<std::size_t>(Port::kLocal),
                        nm.local_fwd_in[r]);
    nm.local_fwd_out[r] = nm.model.add_link(rname(r) + ".fwd.local_out",
                                            kForwardBits,
                                            LinkKind::kCombinational);
    nm.model.bind_output(r, static_cast<std::size_t>(Port::kLocal),
                         nm.local_fwd_out[r]);
    nm.local_credit_out[r] = nm.model.add_link(
        rname(r) + ".credit.local", num_vcs, LinkKind::kCombinational);
    nm.model.bind_output(r, 9, nm.local_credit_out[r]);
  }

  nm.model.finalize();
  return nm;
}

namespace {

std::unique_ptr<Engine> make_engine(const SystemModel& model,
                                    const EngineOptions& opts) {
  if (opts.num_shards <= 1) {
    return std::make_unique<SequentialSimulator>(
        model, opts.policy, /*max_evals_per_block=*/64, opts.seed,
        opts.scheduler);
  }
  ShardedConfig cfg;
  cfg.num_shards = opts.num_shards;
  cfg.partition = opts.partition;
  cfg.schedule = opts.policy;
  cfg.schedule_seed = opts.seed;
  cfg.scheduler = opts.scheduler;
  return std::make_unique<ShardedSimulator>(model, cfg);
}

}  // namespace

SeqNocSimulation::SeqNocSimulation(const noc::NetworkConfig& net,
                                   SchedulePolicy policy)
    : SeqNocSimulation(net, EngineOptions{policy}) {}

SeqNocSimulation::SeqNocSimulation(const noc::NetworkConfig& net,
                                   const EngineOptions& opts)
    : net_(net),
      noc_(build_noc_model(net_)),
      sim_(make_engine(noc_.model, opts)) {}

void SeqNocSimulation::set_local_input(std::size_t r,
                                       const noc::LinkForward& f) {
  BitVector v(noc::kForwardBits);
  v.set_field(0, noc::kForwardBits, noc::encode_forward(f));
  sim_->set_external_input(noc_.local_fwd_in.at(r), v);
  dirty_inputs_.push_back(r);
}

void SeqNocSimulation::step() {
  last_stats_ = sim_->step();
  // Inputs are per-cycle: reset everything that was driven back to idle.
  const BitVector idle(noc::kForwardBits);
  for (std::size_t r : dirty_inputs_) {
    sim_->set_external_input(noc_.local_fwd_in[r], idle);
  }
  dirty_inputs_.clear();
}

noc::LinkForward SeqNocSimulation::local_output(std::size_t r) const {
  return noc::decode_forward(static_cast<std::uint32_t>(
      sim_->link_value(noc_.local_fwd_out.at(r))
          .get_field(0, noc::kForwardBits)));
}

noc::CreditWires SeqNocSimulation::local_input_credits(std::size_t r) const {
  return noc::decode_credit(
      static_cast<std::uint32_t>(
          sim_->link_value(noc_.local_credit_out.at(r))
              .get_field(0, net_.router.num_vcs)),
      net_.router.num_vcs);
}

BitVector SeqNocSimulation::router_state_word(std::size_t r) const {
  return sim_->block_state(r);
}

void SeqNocSimulation::idle_all_inputs() {
  // Defensive against engine reuse: whatever the previous tenant (or an
  // interrupted cycle) left on the local stimulus links must not bleed
  // into the first resumed cycle.
  const BitVector idle(noc::kForwardBits);
  for (const LinkId l : noc_.local_fwd_in) {
    sim_->set_external_input(l, idle);
  }
  dirty_inputs_.clear();
}

void SeqNocSimulation::restore(const EngineCheckpoint& ck) {
  restore_checkpoint(*sim_, ck);
  idle_all_inputs();
}

void SeqNocSimulation::reset() {
  reset_engine(*sim_);
  idle_all_inputs();
}

}  // namespace tmsim::core
