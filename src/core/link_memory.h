// LinkMemory: storage for inter-block wires (§4.2).
//
// Combinational links: "For the links we have a separate memory, where
// every link has only a single memory position and not two as for the
// registers. Per memory position one additional status bit is stored.
// This bit indicates whether the last written value Has Been Read (HBR)."
//
// Registered links (§4.1 systems) are double-banked like block state and
// carry no HBR bit — the reader always consumes the previous cycle's
// value, so evaluation order cannot matter.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bit_vector.h"
#include "common/error.h"
#include "core/system_model.h"

namespace tmsim::core {

class LinkMemory {
 public:
  explicit LinkMemory(const SystemModel& model);

  /// Shard-local variant: materializes storage only for the links in
  /// `materialize` (flag per LinkId). Accessing a link outside the
  /// subset is an Error — a shard touching a link it neither writes nor
  /// reads is always an engine bug, and catching it here is what keeps
  /// the shards' memories provably disjoint.
  LinkMemory(const SystemModel& model, const std::vector<char>& materialize);

  /// Value a *reader* of link l sees right now: the single stored value
  /// for combinational links, the old bank for registered links.
  const BitVector& read(LinkId l) const;

  /// Writer-side update from a block evaluation (or the testbench for
  /// external inputs). For combinational links, returns true when the
  /// stored value changed — the caller must then clear the HBR bit and
  /// destabilize the reader. Registered links write the new bank and
  /// always return false (never destabilizing).
  bool write(LinkId l, const BitVector& value);

  /// HBR handling (combinational links only).
  bool has_been_read(LinkId l) const;
  void mark_read(LinkId l);
  void clear_hbr(LinkId l);
  /// Start of a system cycle: "Every system cycle is started by resetting
  /// all status bits to zero."
  void reset_all_hbr();

  /// End of system cycle: flip registered-link banks (pointer swap).
  void swap_registered_banks();

  /// Total storage bits (values + HBR bits), for the resource model.
  std::size_t total_bits() const;

 private:
  struct Slot {
    LinkKind kind;
    bool hbr = false;            // combinational only
    BitVector value;             // combinational: the single position
    BitVector banks[2];          // registered: old/new
  };

  const Slot& slot(LinkId l) const {
    TMSIM_CHECK_MSG(l < slots_.size(), "link index out of range");
    TMSIM_CHECK_MSG(materialized_[l], "link not materialized in this shard");
    return slots_[l];
  }
  Slot& slot(LinkId l) {
    TMSIM_CHECK_MSG(l < slots_.size(), "link index out of range");
    TMSIM_CHECK_MSG(materialized_[l], "link not materialized in this shard");
    return slots_[l];
  }

  std::vector<Slot> slots_;
  std::vector<char> materialized_;
  std::vector<LinkId> comb_links_;  // for fast HBR reset
  std::size_t old_bank_ = 0;
};

}  // namespace tmsim::core
