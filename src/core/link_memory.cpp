#include "core/link_memory.h"

namespace tmsim::core {

LinkMemory::LinkMemory(const SystemModel& model)
    : LinkMemory(model, std::vector<char>(model.num_links(), 1)) {}

LinkMemory::LinkMemory(const SystemModel& model,
                       const std::vector<char>& materialize) {
  TMSIM_CHECK_MSG(model.finalized(), "model must be finalized");
  TMSIM_CHECK_MSG(materialize.size() == model.num_links(),
                  "materialize flags must cover every link");
  materialized_ = materialize;
  slots_.reserve(model.num_links());
  for (LinkId l = 0; l < model.num_links(); ++l) {
    const LinkInfo& info = model.link(l);
    Slot s{info.kind, false, BitVector(0), {BitVector(0), BitVector(0)}};
    if (materialized_[l]) {
      if (info.kind == LinkKind::kCombinational) {
        s.value = BitVector(info.width);
        comb_links_.push_back(l);
      } else {
        s.banks[0] = BitVector(info.width);
        s.banks[1] = BitVector(info.width);
      }
    }
    slots_.push_back(std::move(s));
  }
}

const BitVector& LinkMemory::read(LinkId l) const {
  const Slot& s = slot(l);
  return s.kind == LinkKind::kCombinational ? s.value : s.banks[old_bank_];
}

bool LinkMemory::write(LinkId l, const BitVector& value) {
  Slot& s = slot(l);
  if (s.kind == LinkKind::kCombinational) {
    TMSIM_CHECK_MSG(value.width() == s.value.width(), "link width mismatch");
    if (value == s.value) {
      return false;
    }
    s.value = value;
    return true;
  }
  BitVector& bank = s.banks[1 - old_bank_];
  TMSIM_CHECK_MSG(value.width() == bank.width(), "link width mismatch");
  bank = value;
  return false;
}

bool LinkMemory::has_been_read(LinkId l) const {
  const Slot& s = slot(l);
  TMSIM_CHECK_MSG(s.kind == LinkKind::kCombinational,
                  "HBR bit exists only on combinational links");
  return s.hbr;
}

void LinkMemory::mark_read(LinkId l) {
  Slot& s = slot(l);
  TMSIM_CHECK_MSG(s.kind == LinkKind::kCombinational,
                  "HBR bit exists only on combinational links");
  s.hbr = true;
}

void LinkMemory::clear_hbr(LinkId l) {
  Slot& s = slot(l);
  TMSIM_CHECK_MSG(s.kind == LinkKind::kCombinational,
                  "HBR bit exists only on combinational links");
  s.hbr = false;
}

void LinkMemory::reset_all_hbr() {
  for (LinkId l : comb_links_) {
    slots_[l].hbr = false;
  }
}

void LinkMemory::swap_registered_banks() { old_bank_ = 1 - old_bank_; }

std::size_t LinkMemory::total_bits() const {
  std::size_t bits = 0;
  for (LinkId l = 0; l < slots_.size(); ++l) {
    if (!materialized_[l]) continue;
    const Slot& s = slots_[l];
    if (s.kind == LinkKind::kCombinational) {
      bits += s.value.width() + 1;  // value + HBR bit
    } else {
      bits += s.banks[0].width() * 2;
    }
  }
  return bits;
}

}  // namespace tmsim::core
