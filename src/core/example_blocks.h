// Small synthetic SimBlocks: worked examples of the SimBlock API, used
// by the core-engine tests, the Fig. 3 / Fig. 5 schedule benches and the
// documentation.
//
// Registered-link convention: a registered link *is* the boundary
// register — the writer drives its D input (the next value), readers see
// its Q output (the value committed at the last clock edge). A block
// whose boundary registers all live in links can have zero state bits,
// which is exactly the paper's Fig. 2b where R1..R3 are memory positions.
#pragma once

#include <cstdint>

#include "core/sim_block.h"
#include "core/system_model.h"

namespace tmsim::core::examples {

/// Registered-boundary block (§4.1): drives `out := in + addend` into a
/// registered link. Stateless — the boundary register lives in the link.
class RegAdderBlock : public SimBlock {
 public:
  RegAdderBlock(std::size_t width, std::uint64_t addend)
      : width_(width), addend_(addend) {}

  std::size_t state_width() const override { return 0; }
  std::size_t num_inputs() const override { return 1; }
  std::size_t input_width(std::size_t) const override { return width_; }
  std::size_t num_outputs() const override { return 1; }
  std::size_t output_width(std::size_t) const override { return width_; }
  BitVector reset_state() const override { return BitVector(0); }

  void evaluate(const BitVector&, std::span<const BitVector> inputs,
                BitVector&, std::span<BitVector> outputs) const override {
    const std::uint64_t in = inputs[0].get_field(0, width_);
    const std::uint64_t mask =
        width_ == 64 ? ~0ull : ((1ull << width_) - 1);
    outputs[0].set_field(0, width_, (in + addend_) & mask);
  }
  std::string type_name() const override { return "reg_adder"; }

 private:
  std::size_t width_;
  std::uint64_t addend_;
};

/// Combinational-boundary block with internal state (the shape of §4.2's
/// router, Fig. 4): G(state) = state + addend on a combinational output;
/// F(state, in) = in. Output depends on registered state only, so the
/// dynamic schedule settles in at most two evaluations per block.
class PipeBlock : public SimBlock {
 public:
  PipeBlock(std::size_t width, std::uint64_t addend, std::uint64_t reset = 0)
      : width_(width), addend_(addend), reset_(reset) {}

  std::size_t state_width() const override { return width_; }
  std::size_t num_inputs() const override { return 1; }
  std::size_t input_width(std::size_t) const override { return width_; }
  std::size_t num_outputs() const override { return 1; }
  std::size_t output_width(std::size_t) const override { return width_; }
  BitVector reset_state() const override {
    BitVector v(width_);
    v.set_field(0, width_, reset_);
    return v;
  }

  void evaluate(const BitVector& old_state, std::span<const BitVector> inputs,
                BitVector& new_state,
                std::span<BitVector> outputs) const override {
    const std::uint64_t mask =
        width_ == 64 ? ~0ull : ((1ull << width_) - 1);
    const std::uint64_t s = old_state.get_field(0, width_);
    outputs[0].set_field(0, width_, (s + addend_) & mask);
    new_state.set_field(0, width_, inputs[0].get_field(0, width_));
  }
  std::string type_name() const override { return "pipe"; }

 private:
  std::size_t width_;
  std::uint64_t addend_;
  std::uint64_t reset_;
};

/// Pure combinational block: out = in + addend, no state. Chains of these
/// across blocks force the §4.2 re-evaluation machinery to propagate
/// values through multiple delta cycles; rings of them form combinational
/// loops that must be detected.
class CombAdderBlock : public SimBlock {
 public:
  CombAdderBlock(std::size_t width, std::uint64_t addend)
      : width_(width), addend_(addend) {}

  std::size_t state_width() const override { return 0; }
  std::size_t num_inputs() const override { return 1; }
  std::size_t input_width(std::size_t) const override { return width_; }
  std::size_t num_outputs() const override { return 1; }
  std::size_t output_width(std::size_t) const override { return width_; }
  BitVector reset_state() const override { return BitVector(0); }

  void evaluate(const BitVector&, std::span<const BitVector> inputs,
                BitVector&, std::span<BitVector> outputs) const override {
    const std::uint64_t mask =
        width_ == 64 ? ~0ull : ((1ull << width_) - 1);
    outputs[0].set_field(0, width_,
                         (inputs[0].get_field(0, width_) + addend_) & mask);
  }
  std::string type_name() const override { return "comb_adder"; }

 private:
  std::size_t width_;
  std::uint64_t addend_;
};

/// Combinational inverter (1 bit): a ring of two oscillates and must trip
/// the non-settling detector.
class NotBlock : public SimBlock {
 public:
  std::size_t state_width() const override { return 0; }
  std::size_t num_inputs() const override { return 1; }
  std::size_t input_width(std::size_t) const override { return 1; }
  std::size_t num_outputs() const override { return 1; }
  std::size_t output_width(std::size_t) const override { return 1; }
  BitVector reset_state() const override { return BitVector(0); }

  void evaluate(const BitVector&, std::span<const BitVector> inputs,
                BitVector&, std::span<BitVector> outputs) const override {
    outputs[0].set_field(0, 1, inputs[0].get_field(0, 1) ^ 1u);
  }
  std::string type_name() const override { return "not"; }
};

}  // namespace tmsim::core::examples
