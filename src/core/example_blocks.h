// Small synthetic SimBlocks: worked examples of the SimBlock API, used
// by the core-engine tests, the Fig. 3 / Fig. 5 schedule benches and the
// documentation.
//
// Registered-link convention: a registered link *is* the boundary
// register — the writer drives its D input (the next value), readers see
// its Q output (the value committed at the last clock edge). A block
// whose boundary registers all live in links can have zero state bits,
// which is exactly the paper's Fig. 2b where R1..R3 are memory positions.
#pragma once

#include <cstdint>

#include "core/sim_block.h"
#include "core/system_model.h"

namespace tmsim::core::examples {

/// Registered-boundary block (§4.1): drives `out := in + addend` into a
/// registered link. Stateless — the boundary register lives in the link.
class RegAdderBlock : public SimBlock {
 public:
  RegAdderBlock(std::size_t width, std::uint64_t addend)
      : width_(width), addend_(addend) {}

  std::size_t state_width() const override { return 0; }
  std::size_t num_inputs() const override { return 1; }
  std::size_t input_width(std::size_t) const override { return width_; }
  std::size_t num_outputs() const override { return 1; }
  std::size_t output_width(std::size_t) const override { return width_; }
  BitVector reset_state() const override { return BitVector(0); }

  void evaluate(const BitVector&, std::span<const BitVector> inputs,
                BitVector&, std::span<BitVector> outputs) const override {
    const std::uint64_t in = inputs[0].get_field(0, width_);
    const std::uint64_t mask =
        width_ == 64 ? ~0ull : ((1ull << width_) - 1);
    outputs[0].set_field(0, width_, (in + addend_) & mask);
  }
  std::string type_name() const override { return "reg_adder"; }

 private:
  std::size_t width_;
  std::uint64_t addend_;
};

/// Combinational-boundary block with internal state (the shape of §4.2's
/// router, Fig. 4): G(state) = state + addend on a combinational output;
/// F(state, in) = in. Output depends on registered state only, so the
/// dynamic schedule settles in at most two evaluations per block.
class PipeBlock : public SimBlock {
 public:
  PipeBlock(std::size_t width, std::uint64_t addend, std::uint64_t reset = 0)
      : width_(width), addend_(addend), reset_(reset) {}

  std::size_t state_width() const override { return width_; }
  std::size_t num_inputs() const override { return 1; }
  std::size_t input_width(std::size_t) const override { return width_; }
  std::size_t num_outputs() const override { return 1; }
  std::size_t output_width(std::size_t) const override { return width_; }
  BitVector reset_state() const override {
    BitVector v(width_);
    v.set_field(0, width_, reset_);
    return v;
  }

  void evaluate(const BitVector& old_state, std::span<const BitVector> inputs,
                BitVector& new_state,
                std::span<BitVector> outputs) const override {
    const std::uint64_t mask =
        width_ == 64 ? ~0ull : ((1ull << width_) - 1);
    const std::uint64_t s = old_state.get_field(0, width_);
    outputs[0].set_field(0, width_, (s + addend_) & mask);
    new_state.set_field(0, width_, inputs[0].get_field(0, width_));
  }
  std::string type_name() const override { return "pipe"; }

  /// G reads registered state only — the F input never feeds the output
  /// combinationally, so the static schedule may cut the in→out edge.
  bool output_depends_on_input(std::size_t, std::size_t) const override {
    return false;
  }

 private:
  std::size_t width_;
  std::uint64_t addend_;
  std::uint64_t reset_;
};

/// Pure combinational block: out = in + addend, no state. Chains of these
/// across blocks force the §4.2 re-evaluation machinery to propagate
/// values through multiple delta cycles; rings of them form combinational
/// loops that must be detected.
class CombAdderBlock : public SimBlock {
 public:
  CombAdderBlock(std::size_t width, std::uint64_t addend)
      : width_(width), addend_(addend) {}

  std::size_t state_width() const override { return 0; }
  std::size_t num_inputs() const override { return 1; }
  std::size_t input_width(std::size_t) const override { return width_; }
  std::size_t num_outputs() const override { return 1; }
  std::size_t output_width(std::size_t) const override { return width_; }
  BitVector reset_state() const override { return BitVector(0); }

  void evaluate(const BitVector&, std::span<const BitVector> inputs,
                BitVector&, std::span<BitVector> outputs) const override {
    const std::uint64_t mask =
        width_ == 64 ? ~0ull : ((1ull << width_) - 1);
    outputs[0].set_field(0, width_,
                         (inputs[0].get_field(0, width_) + addend_) & mask);
  }
  std::string type_name() const override { return "comb_adder"; }

 private:
  std::size_t width_;
  std::uint64_t addend_;
};

/// Two-input combinational OR, fanned out on two identical outputs
/// (combinational links take a single reader, so fan-out means duplicate
/// output ports). OR is monotone: any feedback ring of these reaches a
/// unique fixed point regardless of evaluation order, which makes it the
/// block of choice for differential tests over true combinational cycles
/// — every scheduler must converge to the same values.
class Or2Block : public SimBlock {
 public:
  explicit Or2Block(std::size_t width) : width_(width) {}

  std::size_t state_width() const override { return 0; }
  std::size_t num_inputs() const override { return 2; }
  std::size_t input_width(std::size_t) const override { return width_; }
  std::size_t num_outputs() const override { return 2; }
  std::size_t output_width(std::size_t) const override { return width_; }
  BitVector reset_state() const override { return BitVector(0); }

  void evaluate(const BitVector&, std::span<const BitVector> inputs,
                BitVector&, std::span<BitVector> outputs) const override {
    const std::uint64_t v = inputs[0].get_field(0, width_) |
                            inputs[1].get_field(0, width_);
    outputs[0].set_field(0, width_, v);
    outputs[1].set_field(0, width_, v);
  }
  std::string type_name() const override { return "or2"; }

 private:
  std::size_t width_;
};

/// Two-input XOR (plus a per-instance tweak constant), fanned out on two
/// identical outputs. XOR changes its output whenever either input
/// changes, which makes ladders of these the adversarial workload for
/// event-driven scheduling: each value change re-triggers downstream
/// evaluation, while a static schedule evaluates each block exactly once.
class Xor2Block : public SimBlock {
 public:
  Xor2Block(std::size_t width, std::uint64_t tweak)
      : width_(width), tweak_(tweak) {}

  std::size_t state_width() const override { return 0; }
  std::size_t num_inputs() const override { return 2; }
  std::size_t input_width(std::size_t) const override { return width_; }
  std::size_t num_outputs() const override { return 2; }
  std::size_t output_width(std::size_t) const override { return width_; }
  BitVector reset_state() const override { return BitVector(0); }

  void evaluate(const BitVector&, std::span<const BitVector> inputs,
                BitVector&, std::span<BitVector> outputs) const override {
    const std::uint64_t mask =
        width_ == 64 ? ~0ull : ((1ull << width_) - 1);
    const std::uint64_t v = (inputs[0].get_field(0, width_) ^
                             inputs[1].get_field(0, width_) ^ tweak_) &
                            mask;
    outputs[0].set_field(0, width_, v);
    outputs[1].set_field(0, width_, v);
  }
  std::string type_name() const override { return "xor2"; }

 private:
  std::size_t width_;
  std::uint64_t tweak_;
};

/// Combinational inverter (1 bit): a ring of two oscillates and must trip
/// the non-settling detector.
class NotBlock : public SimBlock {
 public:
  std::size_t state_width() const override { return 0; }
  std::size_t num_inputs() const override { return 1; }
  std::size_t input_width(std::size_t) const override { return 1; }
  std::size_t num_outputs() const override { return 1; }
  std::size_t output_width(std::size_t) const override { return 1; }
  BitVector reset_state() const override { return BitVector(0); }

  void evaluate(const BitVector&, std::span<const BitVector> inputs,
                BitVector&, std::span<BitVector> outputs) const override {
    outputs[0].set_field(0, 1, inputs[0].get_field(0, 1) ^ 1u);
  }
  std::string type_name() const override { return "not"; }
};

}  // namespace tmsim::core::examples
