#include "core/partition.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace tmsim::core {

const char* partition_policy_name(PartitionPolicy policy) {
  switch (policy) {
    case PartitionPolicy::kRoundRobin: return "round_robin";
    case PartitionPolicy::kContiguous: return "contiguous";
    case PartitionPolicy::kMinCutGreedy: return "min_cut_greedy";
  }
  return "?";
}

namespace {

/// Balanced shard sizes: the first n mod N shards get one extra block.
std::vector<std::size_t> target_sizes(std::size_t n, std::size_t num_shards) {
  std::vector<std::size_t> sizes(num_shards, n / num_shards);
  for (std::size_t s = 0; s < n % num_shards; ++s) {
    ++sizes[s];
  }
  return sizes;
}

/// Symmetric block-affinity adjacency: weight = number of links joining
/// the two blocks in either direction (a writer is affine to each of its
/// readers). Self-loops are ignored — they never cross a shard boundary.
std::vector<std::vector<std::pair<BlockId, std::size_t>>> affinity(
    const SystemModel& model) {
  std::vector<std::vector<std::pair<BlockId, std::size_t>>> adj(
      model.num_blocks());
  const auto bump = [&](BlockId a, BlockId b) {
    for (auto& [peer, w] : adj[a]) {
      if (peer == b) {
        ++w;
        return;
      }
    }
    adj[a].emplace_back(b, 1);
  };
  for (LinkId l = 0; l < model.num_links(); ++l) {
    const LinkInfo& info = model.link(l);
    if (!info.writer.has_value()) continue;
    for (const Endpoint& r : info.readers) {
      if (r.block == info.writer->block) continue;
      bump(info.writer->block, r.block);
      bump(r.block, info.writer->block);
    }
  }
  return adj;
}

void fill_round_robin(Partition& p, std::size_t n, std::size_t num_shards) {
  for (BlockId b = 0; b < n; ++b) {
    p.shard_of[b] = b % num_shards;
  }
}

void fill_contiguous(Partition& p, std::size_t n, std::size_t num_shards) {
  const std::vector<std::size_t> sizes = target_sizes(n, num_shards);
  BlockId b = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    for (std::size_t i = 0; i < sizes[s]; ++i) {
      p.shard_of[b++] = s;
    }
  }
}

void fill_min_cut_greedy(const SystemModel& model, Partition& p,
                         std::size_t n, std::size_t num_shards) {
  const std::vector<std::size_t> sizes = target_sizes(n, num_shards);
  const auto adj = affinity(model);
  constexpr std::size_t kUnassigned = std::numeric_limits<std::size_t>::max();
  std::fill(p.shard_of.begin(), p.shard_of.end(), kUnassigned);
  // Affinity of each unassigned block to the shard currently growing.
  std::vector<std::size_t> gain(n, 0);

  BlockId next_seed = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    std::fill(gain.begin(), gain.end(), 0);
    while (next_seed < n && p.shard_of[next_seed] != kUnassigned) {
      ++next_seed;
    }
    BlockId frontier = next_seed;
    for (std::size_t grown = 0; grown < sizes[s]; ++grown) {
      p.shard_of[frontier] = s;
      for (const auto& [peer, w] : adj[frontier]) {
        if (p.shard_of[peer] == kUnassigned) {
          gain[peer] += w;
        }
      }
      if (grown + 1 == sizes[s]) break;
      // Next absorbed block: strongest affinity to the shard; ties to
      // the lowest id. A disconnected remainder falls back to the
      // lowest-id unassigned block (gain 0 everywhere).
      std::size_t best_gain = 0;
      BlockId best = kUnassigned;
      for (BlockId b = 0; b < n; ++b) {
        if (p.shard_of[b] != kUnassigned) continue;
        if (best == kUnassigned || gain[b] > best_gain) {
          best = b;
          best_gain = gain[b];
        }
      }
      frontier = best;
    }
  }
}

}  // namespace

Partition partition_blocks(const SystemModel& model, std::size_t num_shards,
                           PartitionPolicy policy) {
  TMSIM_CHECK_MSG(model.finalized(), "model must be finalized");
  const std::size_t n = model.num_blocks();
  TMSIM_CHECK_MSG(num_shards >= 1, "need at least one shard");
  TMSIM_CHECK_MSG(num_shards <= n,
                  "more shards than blocks (empty shards are useless)");

  Partition p;
  p.shard_of.assign(n, 0);
  switch (policy) {
    case PartitionPolicy::kRoundRobin:
      fill_round_robin(p, n, num_shards);
      break;
    case PartitionPolicy::kContiguous:
      fill_contiguous(p, n, num_shards);
      break;
    case PartitionPolicy::kMinCutGreedy:
      fill_min_cut_greedy(model, p, n, num_shards);
      break;
  }

  p.shards.assign(num_shards, {});
  for (BlockId b = 0; b < n; ++b) {
    p.shards[p.shard_of[b]].push_back(b);
  }
  return p;
}

std::size_t count_cut_links(const SystemModel& model, const Partition& p) {
  std::size_t cut = 0;
  for (LinkId l = 0; l < model.num_links(); ++l) {
    const LinkInfo& info = model.link(l);
    if (!info.writer.has_value() || info.readers.empty()) continue;
    const std::size_t ws = p.shard_of.at(info.writer->block);
    for (const Endpoint& r : info.readers) {
      if (p.shard_of.at(r.block) != ws) {
        ++cut;
        break;
      }
    }
  }
  return cut;
}

}  // namespace tmsim::core
