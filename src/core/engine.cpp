#include "core/engine.h"

#include <algorithm>

#include "common/rng.h"

namespace tmsim::core {

Engine::~Engine() = default;

SimObserver::~SimObserver() = default;

const char* scheduler_kind_name(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kRoundRobin:
      return "round_robin";
    case SchedulerKind::kWorklist:
      return "worklist";
    case SchedulerKind::kCompiled:
      return "compiled";
  }
  return "unknown";
}

std::string ConvergenceReport::summary() const {
  std::string s = "system cycle " + std::to_string(cycle) +
                  " did not settle after " + std::to_string(delta_cycles) +
                  " delta cycles (limit " + std::to_string(limit) + "); " +
                  std::to_string(oscillating_blocks.size()) + "/" +
                  std::to_string(num_blocks) + " blocks unstable";
  if (!oscillating_blocks.empty()) {
    s += " {";
    const std::size_t shown = std::min<std::size_t>(8, oscillating_blocks.size());
    for (std::size_t i = 0; i < shown; ++i) {
      if (i) s += ',';
      s += std::to_string(oscillating_blocks[i]);
    }
    if (shown < oscillating_blocks.size()) s += ",...";
    s += '}';
  }
  if (!last_changed_links.empty()) {
    s += "; last changed links {";
    for (std::size_t i = 0; i < last_changed_links.size(); ++i) {
      if (i) s += ',';
      s += std::to_string(last_changed_links[i]);
    }
    s += '}';
  }
  return s;
}

namespace {

ContextualError::Context convergence_context(const ConvergenceReport& r) {
  ContextualError::Context ctx;
  ctx.emplace_back("cycle", std::to_string(r.cycle));
  ctx.emplace_back("delta_cycles", std::to_string(r.delta_cycles));
  ctx.emplace_back("limit", std::to_string(r.limit));
  ctx.emplace_back("unstable_blocks",
                   std::to_string(r.oscillating_blocks.size()));
  ctx.emplace_back("link_changes", std::to_string(r.link_changes));
  return ctx;
}

}  // namespace

ConvergenceError::ConvergenceError(ConvergenceReport report)
    : ContextualError(
          "combinational dependencies do not settle (oscillating loop?): " +
              report.summary(),
          convergence_context(report)),
      report_(std::move(report)) {}

std::vector<std::size_t> block_state_widths(const SystemModel& model) {
  std::vector<std::size_t> widths;
  widths.reserve(model.num_blocks());
  for (BlockId b = 0; b < model.num_blocks(); ++b) {
    widths.push_back(model.block(b).logic->state_width());
  }
  return widths;
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_mix(std::uint64_t& h, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

std::uint64_t states_digest(const std::vector<BitVector>& states) {
  std::uint64_t h = kFnvOffset;
  for (const BitVector& s : states) {
    fnv_mix(h, s.width());
    for (std::uint64_t w : s.words()) {
      fnv_mix(h, w);
    }
  }
  return h;
}

/// Registered *internal* links hold committed values the block-state
/// snapshot cannot see; combinational links (and external links, driven
/// or observed by the testbench each cycle) carry none across cycles.
void check_checkpointable(const SystemModel& model) {
  for (LinkId l = 0; l < model.num_links(); ++l) {
    const LinkInfo& info = model.link(l);
    const bool internal =
        info.writer.has_value() && !info.readers.empty();
    if (internal && info.kind == LinkKind::kRegistered) {
      throw ContextualError(
          "model has an internal registered link; its committed value is "
          "not part of the block-state checkpoint, so checkpoint/resume "
          "is unsupported for this model",
          {{"link", std::to_string(l)}, {"name", info.name}});
    }
  }
}

}  // namespace

std::uint64_t engine_state_digest(const Engine& eng) {
  std::uint64_t h = kFnvOffset;
  const SystemModel& model = eng.model();
  for (BlockId b = 0; b < model.num_blocks(); ++b) {
    const BitVector& s = eng.block_state(b);
    fnv_mix(h, s.width());
    for (std::uint64_t w : s.words()) {
      fnv_mix(h, w);
    }
  }
  return h;
}

EngineCheckpoint save_checkpoint(const Engine& eng) {
  const SystemModel& model = eng.model();
  check_checkpointable(model);
  EngineCheckpoint ck;
  ck.cycle = eng.cycle();
  ck.total_delta_cycles = eng.total_delta_cycles();
  ck.block_states.reserve(model.num_blocks());
  for (BlockId b = 0; b < model.num_blocks(); ++b) {
    ck.block_states.push_back(eng.block_state(b));
  }
  ck.digest = states_digest(ck.block_states);
  ck.sched = eng.scheduler_checkpoint();
  // Internal combinational link values ride along (ascending link id) so
  // the scheduler's quiescence flags stay sound after the restore — a
  // block the fast path skips never rewrites its outputs.
  for (LinkId l = 0; l < model.num_links(); ++l) {
    const LinkInfo& info = model.link(l);
    if (info.kind == LinkKind::kCombinational && info.writer.has_value() &&
        !info.readers.empty()) {
      ck.link_ids.push_back(l);
      ck.link_values.push_back(eng.link_value(l));
    }
  }
  ck.link_digest = states_digest(ck.link_values);
  return ck;
}

void restore_checkpoint(Engine& eng, const EngineCheckpoint& ck) {
  const SystemModel& model = eng.model();
  check_checkpointable(model);
  if (ck.block_states.size() != model.num_blocks()) {
    throw ContextualError(
        "checkpoint shape does not match the engine's model",
        {{"checkpoint_blocks", std::to_string(ck.block_states.size())},
         {"model_blocks", std::to_string(model.num_blocks())}});
  }
  if (states_digest(ck.block_states) != ck.digest) {
    throw ContextualError(
        "checkpoint digest mismatch: snapshot corrupted in flight",
        {{"cycle", std::to_string(ck.cycle)}});
  }
  // A hand-built checkpoint may omit the link snapshot entirely (both
  // fields defaulted); anything else must verify.
  const bool has_link_snapshot =
      !ck.link_ids.empty() || ck.link_digest != 0;
  if (has_link_snapshot &&
      (ck.link_ids.size() != ck.link_values.size() ||
       states_digest(ck.link_values) != ck.link_digest)) {
    throw ContextualError(
        "checkpoint link-value digest mismatch: snapshot corrupted in flight",
        {{"cycle", std::to_string(ck.cycle)}});
  }
  for (BlockId b = 0; b < model.num_blocks(); ++b) {
    eng.load_block_state(b, ck.block_states[b]);
  }
  for (std::size_t i = 0; i < ck.link_ids.size(); ++i) {
    if (ck.link_ids[i] < model.num_links()) {
      eng.load_link_value(ck.link_ids[i], ck.link_values[i]);
    }
  }
  // Verify the loads landed bit-for-bit — the same mirror-vs-hardware
  // cross-check the hardened host applies to its commit counters.
  if (engine_state_digest(eng) != ck.digest) {
    throw ContextualError(
        "restored engine state does not match the checkpoint digest",
        {{"cycle", std::to_string(ck.cycle)}});
  }
  // Scheduler bookkeeping rides along so the resumed engine replays the
  // same StepStats stream; a mismatched/empty snapshot canonicalizes.
  eng.restore_scheduler_state(ck.sched);
  eng.rebase(ck.cycle, ck.total_delta_cycles);
}

std::size_t schedule_rr_offset(std::uint64_t schedule_seed,
                               std::size_t num_blocks) {
  if (schedule_seed == 1 || num_blocks == 0) {
    return 0;
  }
  SplitMix64 rng(schedule_seed);
  return static_cast<std::size_t>(rng.next_below(num_blocks));
}

void reset_engine(Engine& eng) {
  const SystemModel& model = eng.model();
  for (BlockId b = 0; b < model.num_blocks(); ++b) {
    eng.load_block_state(b, model.block(b).logic->reset_state());
  }
  // Power-on scheduling state too: cursors back to their seeded offsets,
  // quiescence flags cleared — a reused farm engine must not leak the
  // previous tenant's scheduling stats into the next job's stream.
  eng.restore_scheduler_state({});
  eng.rebase(0, 0);
}

void check_external_input(const SystemModel& model, LinkId link) {
  TMSIM_CHECK_MSG(link < model.num_links(), "link index out of range");
  const LinkInfo& info = model.link(link);
  if (!model.is_external_input(link)) {
    throw ContextualError(
        "link '" + info.name + "' is driven by a block, not the testbench",
        {{"link", std::to_string(link)}, {"name", info.name}});
  }
  if (info.readers.empty()) {
    throw ContextualError(
        "link '" + info.name +
            "' has no readers: driving it is a silently dropped stimulus",
        {{"link", std::to_string(link)}, {"name", info.name}});
  }
}

void check_scheduler_topology(const SystemModel& model, SchedulerKind kind) {
  if (kind != SchedulerKind::kWorklist) {
    return;
  }
  for (LinkId l = 0; l < model.num_links(); ++l) {
    const LinkInfo& info = model.link(l);
    if (info.kind != LinkKind::kCombinational) {
      continue;
    }
    if (info.writer.has_value()) {
      for (const Endpoint& r : info.readers) {
        if (r.block == info.writer->block) {
          throw ContextualError(
              "combinational self-loop link '" + info.name +
                  "': the worklist scheduler would requeue its block on "
                  "every evaluation; break the loop with a registered link "
                  "or run the round_robin scheduler",
              {{"link", std::to_string(l)},
               {"name", info.name},
               {"block", std::to_string(info.writer->block)},
               {"scheduler", scheduler_kind_name(kind)}});
        }
      }
    } else if (info.readers.empty()) {
      throw ContextualError(
          "external combinational link '" + info.name +
              "' has an empty reader set: a stimulus on it is an event "
              "that wakes no block, which the worklist scheduler would "
              "silently drop",
          {{"link", std::to_string(l)},
           {"name", info.name},
           {"scheduler", scheduler_kind_name(kind)}});
    }
  }
}

}  // namespace tmsim::core
