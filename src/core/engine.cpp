#include "core/engine.h"

#include <algorithm>

namespace tmsim::core {

Engine::~Engine() = default;

SimObserver::~SimObserver() = default;

std::string ConvergenceReport::summary() const {
  std::string s = "system cycle " + std::to_string(cycle) +
                  " did not settle after " + std::to_string(delta_cycles) +
                  " delta cycles (limit " + std::to_string(limit) + "); " +
                  std::to_string(oscillating_blocks.size()) + "/" +
                  std::to_string(num_blocks) + " blocks unstable";
  if (!oscillating_blocks.empty()) {
    s += " {";
    const std::size_t shown = std::min<std::size_t>(8, oscillating_blocks.size());
    for (std::size_t i = 0; i < shown; ++i) {
      if (i) s += ',';
      s += std::to_string(oscillating_blocks[i]);
    }
    if (shown < oscillating_blocks.size()) s += ",...";
    s += '}';
  }
  if (!last_changed_links.empty()) {
    s += "; last changed links {";
    for (std::size_t i = 0; i < last_changed_links.size(); ++i) {
      if (i) s += ',';
      s += std::to_string(last_changed_links[i]);
    }
    s += '}';
  }
  return s;
}

namespace {

ContextualError::Context convergence_context(const ConvergenceReport& r) {
  ContextualError::Context ctx;
  ctx.emplace_back("cycle", std::to_string(r.cycle));
  ctx.emplace_back("delta_cycles", std::to_string(r.delta_cycles));
  ctx.emplace_back("limit", std::to_string(r.limit));
  ctx.emplace_back("unstable_blocks",
                   std::to_string(r.oscillating_blocks.size()));
  ctx.emplace_back("link_changes", std::to_string(r.link_changes));
  return ctx;
}

}  // namespace

ConvergenceError::ConvergenceError(ConvergenceReport report)
    : ContextualError(
          "combinational dependencies do not settle (oscillating loop?): " +
              report.summary(),
          convergence_context(report)),
      report_(std::move(report)) {}

std::vector<std::size_t> block_state_widths(const SystemModel& model) {
  std::vector<std::size_t> widths;
  widths.reserve(model.num_blocks());
  for (BlockId b = 0; b < model.num_blocks(); ++b) {
    widths.push_back(model.block(b).logic->state_width());
  }
  return widths;
}

void check_external_input(const SystemModel& model, LinkId link) {
  TMSIM_CHECK_MSG(link < model.num_links(), "link index out of range");
  const LinkInfo& info = model.link(link);
  if (!model.is_external_input(link)) {
    throw ContextualError(
        "link '" + info.name + "' is driven by a block, not the testbench",
        {{"link", std::to_string(link)}, {"name", info.name}});
  }
  if (info.readers.empty()) {
    throw ContextualError(
        "link '" + info.name +
            "' has no readers: driving it is a silently dropped stimulus",
        {{"link", std::to_string(link)}, {"name", info.name}});
  }
}

}  // namespace tmsim::core
