#include "core/shard_mailbox.h"

#include <thread>

#include "common/error.h"

namespace tmsim::core {

ShardBarrier::ShardBarrier(std::size_t participants)
    : participants_(participants) {
  TMSIM_CHECK_MSG(participants >= 1, "barrier needs a participant");
}

std::uint64_t ShardBarrier::sync(std::uint64_t contribution,
                                 std::uint64_t* spins) {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  sum_.fetch_add(contribution, std::memory_order_acq_rel);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == participants_) {
    // Last arriver: reduce, reset for the next round, release everyone.
    result_ = sum_.exchange(0, std::memory_order_acq_rel);
    arrived_.store(0, std::memory_order_relaxed);
    generation_.store(gen + 1, std::memory_order_release);
    generation_.notify_all();
    return result_;
  }
  // Short spin first: inside a system cycle the other workers are at most
  // a few block evaluations away. Fall back to the futex so a barrier
  // parked between cycles (or on an oversubscribed host) costs no CPU.
  for (int i = 0; i < 128; ++i) {
    if (generation_.load(std::memory_order_acquire) != gen) {
      if (spins) {
        *spins += static_cast<std::uint64_t>(i) + 1;
      }
      return result_;
    }
  }
  if (spins) {
    *spins += 128;
  }
  std::this_thread::yield();
  while (generation_.load(std::memory_order_acquire) == gen) {
    generation_.wait(gen, std::memory_order_acquire);
  }
  return result_;
}

ShardMailbox::ShardMailbox(const std::vector<std::size_t>& widths)
    : num_slots_(widths.size()),
      slots_(std::make_unique<Slot[]>(widths.size())) {
  for (std::size_t i = 0; i < num_slots_; ++i) {
    slots_[i].value = BitVector(widths[i]);
  }
}

void ShardMailbox::publish(std::size_t slot, const BitVector& value) {
  TMSIM_CHECK_MSG(slot < num_slots_, "mailbox slot out of range");
  Slot& s = slots_[slot];
  TMSIM_CHECK_MSG(value.width() == s.value.width(),
                  "mailbox slot width mismatch");
  s.value = value;
  s.version.fetch_add(1, std::memory_order_release);
}

std::uint64_t ShardMailbox::version(std::size_t slot) const {
  TMSIM_CHECK_MSG(slot < num_slots_, "mailbox slot out of range");
  return slots_[slot].version.load(std::memory_order_acquire);
}

bool ShardMailbox::poll(std::size_t slot, std::uint64_t& last_seen,
                        BitVector& out) const {
  TMSIM_CHECK_MSG(slot < num_slots_, "mailbox slot out of range");
  const Slot& s = slots_[slot];
  const std::uint64_t v = s.version.load(std::memory_order_acquire);
  if (v == last_seen) {
    return false;
  }
  last_seen = v;
  out = s.value;
  return true;
}

}  // namespace tmsim::core
