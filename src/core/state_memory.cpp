#include "core/state_memory.h"

#include <algorithm>

namespace tmsim::core {

StateMemory::StateMemory(const std::vector<std::size_t>& widths)
    : num_blocks_(widths.size()) {
  TMSIM_CHECK_MSG(!widths.empty(), "state memory needs at least one block");
  words_.reserve(2 * num_blocks_);
  for (int bank = 0; bank < 2; ++bank) {
    for (std::size_t w : widths) {
      words_.emplace_back(w);
    }
  }
  word_width_ = *std::max_element(widths.begin(), widths.end());
}

std::size_t StateMemory::total_bits() const {
  std::size_t bits = 0;
  for (const auto& w : words_) {
    bits += w.width();
  }
  return bits;
}

}  // namespace tmsim::core
