// SimBlock: the unit the sequential simulator time-multiplexes (§4).
//
// A block is one partition of the parallel design — in the NoC case study
// one router ("we would like to partition the design at the granularity of
// routers, as this is our basic element in the NoC", §4.2). A block's
// registers are held *outside* the block in the engine's StateMemory; the
// block itself is pure combinational logic:
//
//     (old_state, inputs) → (new_state, outputs)
//
// evaluated once per delta cycle. The same block instance can be shared by
// every identical partition (the paper's F'_{i,j}(x)): evaluation carries
// no per-call state, so homogeneous systems instantiate the logic once —
// exactly what makes the FPGA approach area-efficient.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "common/bit_vector.h"

namespace tmsim::core {

/// Pure combinational view of one design partition.
class SimBlock {
 public:
  virtual ~SimBlock() = default;

  /// Width of the block's register file (its state-memory word).
  virtual std::size_t state_width() const = 0;

  /// Number and width of input link ports.
  virtual std::size_t num_inputs() const = 0;
  virtual std::size_t input_width(std::size_t port) const = 0;

  /// Number and width of output link ports.
  virtual std::size_t num_outputs() const = 0;
  virtual std::size_t output_width(std::size_t port) const = 0;

  /// Initial (reset) contents of the state word.
  virtual BitVector reset_state() const = 0;

  /// One delta cycle: evaluate F (next state) and G (outputs) together,
  /// as the FPGA does ("F(x) and G(x) of a single router will be evaluated
  /// in parallel", §4.2).
  ///
  /// Must be pure: same (old_state, inputs) → same (new_state, outputs).
  /// The dynamic scheduler relies on this to make re-evaluation safe.
  virtual void evaluate(const BitVector& old_state,
                        std::span<const BitVector> inputs,
                        BitVector& new_state,
                        std::span<BitVector> outputs) const = 0;

  /// Human-readable type name for traces and error messages.
  virtual std::string type_name() const = 0;

  /// Static dependency metadata for the compiled schedule (analysis
  /// layer): does output port `out` combinationally depend on input port
  /// `in`? The default is the conservative answer (every output may
  /// depend on every input). Blocks whose outputs are functions of
  /// registered state only — the §4.2 router shape — override this to
  /// return false, which lets the static-schedule pass cut the
  /// input→output edge and break apparent combinational cycles at build
  /// time. Must be sound: returning false for a real dependency breaks
  /// bit-identity; returning true for a false one only costs schedule
  /// quality.
  virtual bool output_depends_on_input(std::size_t out, std::size_t in) const {
    (void)out;
    (void)in;
    return true;
  }
};

}  // namespace tmsim::core
