// SystemModel: the netlist the sequential simulator executes.
//
// Blocks (SimBlock instances, shareable across identical partitions) are
// wired together through *links*. A link has exactly one writer port and —
// for combinational links — exactly one reader port, mirroring the paper's
// link memory where each link is one memory position with one HBR bit
// (§4.2). Two link kinds:
//
//  - kRegistered (§4.1): the link value is itself a register; readers see
//    the value the writer produced in the *previous* system cycle. Stored
//    double-banked like block state. Systems whose boundaries are all
//    registered can run a single-pass static schedule (Fig. 3).
//  - kCombinational (§4.2): an unbuffered wire; readers must see the value
//    the writer drives in the *current* system cycle. Stored single-banked
//    with a Has-Been-Read bit; requires the dynamic schedule (Fig. 5).
//
// A link without a writer is an external input (driven by the testbench /
// stimuli interface each cycle); a link without readers is an external
// output (observed by the testbench).
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/sim_block.h"

namespace tmsim::core {

using BlockId = std::size_t;
using LinkId = std::size_t;

enum class LinkKind : std::uint8_t { kRegistered = 0, kCombinational = 1 };

/// (block, port) endpoint of a link.
struct Endpoint {
  BlockId block = 0;
  std::size_t port = 0;
};

struct BlockInstance {
  std::shared_ptr<const SimBlock> logic;
  std::string name;
  // Filled by finalize(): link bound to each input/output port.
  std::vector<LinkId> input_links;
  std::vector<LinkId> output_links;
};

struct LinkInfo {
  std::string name;
  std::size_t width = 0;
  LinkKind kind = LinkKind::kCombinational;
  std::optional<Endpoint> writer;
  std::vector<Endpoint> readers;
};

/// Immutable-after-finalize netlist description.
class SystemModel {
 public:
  /// Adds a design partition. The same `logic` pointer may back many
  /// blocks (homogeneous system — one implementation, many states).
  BlockId add_block(std::shared_ptr<const SimBlock> logic, std::string name);

  /// Declares a link of `width` bits.
  LinkId add_link(std::string name, std::size_t width, LinkKind kind);

  /// Binds block output / input ports to links. Each output port drives
  /// exactly one link; each input port reads exactly one link.
  void bind_output(BlockId block, std::size_t port, LinkId link);
  void bind_input(BlockId block, std::size_t port, LinkId link);

  /// Validates the netlist: every port bound, widths consistent,
  /// combinational links have at most one reader. Must be called before
  /// handing the model to an engine.
  void finalize();
  bool finalized() const { return finalized_; }

  std::size_t num_blocks() const { return blocks_.size(); }
  std::size_t num_links() const { return links_.size(); }
  const BlockInstance& block(BlockId b) const { return blocks_.at(b); }
  const LinkInfo& link(LinkId l) const { return links_.at(l); }

  /// True when the link has no writer (testbench-driven).
  bool is_external_input(LinkId l) const {
    return !links_.at(l).writer.has_value();
  }
  /// True when the link has no reader (testbench-observed).
  bool is_external_output(LinkId l) const {
    return links_.at(l).readers.empty();
  }
  /// True when every internal link is registered (static schedule legal).
  bool all_boundaries_registered() const;

 private:
  std::vector<BlockInstance> blocks_;
  std::vector<LinkInfo> links_;
  bool finalized_ = false;
};

}  // namespace tmsim::core
