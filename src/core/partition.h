// Block-graph partitioning for the sharded bulk-synchronous engine.
//
// A partition assigns every block of a finalized SystemModel to exactly
// one shard. The quality metric is the *cut*: the number of links whose
// writer and at least one reader land in different shards — each cut
// link becomes a mailbox slot the shards must synchronize through at
// every delta-cycle barrier, so fewer cuts mean less superstep traffic
// (GSIM's observation that graph partitioning is the scaling lever for
// parallel cycle-accurate simulation).
//
// Three policies:
//  - kRoundRobin: block b → shard b mod N. The pessimal-but-trivial
//    baseline; on grid topologies it scatters neighbours deliberately.
//  - kContiguous: blocks in id order, split into N near-equal runs.
//    Because builders emit blocks in scan order (build_noc_model emits
//    row-major), this is the "stripes" partition.
//  - kMinCutGreedy: grows each shard around a seed by repeatedly
//    absorbing the unassigned block with the strongest link affinity to
//    the shard (ties to the lowest id). On rings, meshes and tori this
//    yields connected regions and never cuts more links than
//    round-robin (property-tested in tests/core/partition_test.cpp).
//
// All policies are deterministic: the same (model, num_shards, policy)
// always yields the same partition — a prerequisite for the replayable
// differential tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/system_model.h"

namespace tmsim::core {

enum class PartitionPolicy : std::uint8_t {
  kRoundRobin = 0,
  kContiguous = 1,
  kMinCutGreedy = 2,
};

const char* partition_policy_name(PartitionPolicy policy);

struct Partition {
  /// Block ids per shard, ascending within each shard. Every block of
  /// the model appears in exactly one shard (complete, disjoint cover).
  std::vector<std::vector<BlockId>> shards;
  /// Inverse map: shard_of[b] is the shard holding block b.
  std::vector<std::size_t> shard_of;

  std::size_t num_shards() const { return shards.size(); }
};

/// Partitions the model's blocks into `num_shards` shards
/// (1 <= num_shards <= num_blocks). Shard sizes are balanced: every
/// shard holds floor(n/N) or ceil(n/N) blocks.
Partition partition_blocks(const SystemModel& model, std::size_t num_shards,
                           PartitionPolicy policy);

/// Number of links whose writer block and at least one reader block live
/// in different shards — the boundary the sharded engine must exchange
/// through mailboxes. External links (no writer, or no readers) never
/// count: they are testbench-owned, not shard-to-shard traffic.
std::size_t count_cut_links(const SystemModel& model, const Partition& p);

}  // namespace tmsim::core
