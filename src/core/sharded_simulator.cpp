#include "core/sharded_simulator.h"

#include <algorithm>
#include <chrono>
#include <span>
#include <utility>

namespace tmsim::core {
namespace {

constexpr std::size_t kNoSlot = ~std::size_t{0};
// Barrier-2 contribution encoding an exception during the exchange
// phase; far above any possible sum of unstable-block counts.
constexpr std::uint64_t kErrorSentinel = std::uint64_t{1} << 62;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ShardedSimulator::ShardedSimulator(const SystemModel& model,
                                   const ShardedConfig& cfg)
    : model_(model), cfg_(cfg) {
  TMSIM_CHECK_MSG(model.finalized(), "model must be finalized");
  TMSIM_CHECK_MSG(model.num_blocks() >= 1,
                  "sharded engine needs at least one block");
  TMSIM_CHECK_MSG(cfg.num_shards >= 1, "num_shards must be >= 1");
  TMSIM_CHECK_MSG(cfg.max_evals_per_block >= 1, "eval limit must be positive");
  if (cfg_.schedule == SchedulePolicy::kStatic) {
    TMSIM_CHECK_MSG(model.all_boundaries_registered(),
                    "static schedule requires registered boundaries (§4.1); "
                    "use kDynamic for combinational boundaries");
  }
  check_scheduler_topology(model, cfg_.scheduler);

  const std::size_t n = model.num_blocks();
  cfg_.num_shards = std::min(cfg_.num_shards, n);
  part_ = partition_blocks(model, cfg_.num_shards, cfg_.partition);
  const std::size_t k = part_.num_shards();

  local_of_.assign(n, 0);
  for (std::size_t s = 0; s < k; ++s) {
    for (std::size_t i = 0; i < part_.shards[s].size(); ++i) {
      local_of_[part_.shards[s][i]] = i;
    }
  }

  // Classify every link: which shards materialize it, who owns the
  // authoritative copy, and whether it crosses the cut (gets a mailbox
  // slot). A cut link is materialized on both sides: the writer's copy
  // does change detection, each reading shard's replica carries that
  // shard's HBR bit.
  slot_of_link_.assign(model.num_links(), kNoSlot);
  link_home_.assign(model.num_links(), 0);
  link_shards_.assign(model.num_links(), {});
  std::vector<std::size_t> slot_widths;
  std::vector<std::vector<char>> materialize(
      k, std::vector<char>(model.num_links(), 0));
  for (LinkId l = 0; l < model.num_links(); ++l) {
    const LinkInfo& info = model.link(l);
    std::vector<std::size_t>& owners = link_shards_[l];
    auto add_shard = [&owners](std::size_t s) {
      if (std::find(owners.begin(), owners.end(), s) == owners.end()) {
        owners.push_back(s);
      }
    };
    std::size_t writer_shard = kNoSlot;
    if (info.writer) {
      writer_shard = part_.shard_of[info.writer->block];
      add_shard(writer_shard);
    }
    bool crosses = false;
    for (const Endpoint& r : info.readers) {
      const std::size_t rs = part_.shard_of[r.block];
      add_shard(rs);
      crosses = crosses || (writer_shard != kNoSlot && rs != writer_shard);
    }
    if (owners.empty()) {
      add_shard(0);  // orphan link (no writer, no readers): park in shard 0
    }
    link_home_[l] = owners.front();
    for (const std::size_t s : owners) {
      materialize[s][l] = 1;
    }
    if (crosses) {
      slot_of_link_[l] = slot_widths.size();
      slot_widths.push_back(info.width);
    }
  }
  boundary_links_ = slot_widths.size();
  mailbox_ = std::make_unique<ShardMailbox>(slot_widths);
  barrier_ = std::make_unique<ShardBarrier>(k);

  shards_.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    const std::vector<BlockId>& blocks = part_.shards[s];
    std::vector<std::size_t> widths;
    widths.reserve(blocks.size());
    for (const BlockId b : blocks) {
      widths.push_back(model.block(b).logic->state_width());
    }
    auto sh = std::make_unique<Shard>(s, blocks, std::move(widths), model,
                                      materialize[s]);
    sh->unstable.assign(blocks.size(), 0);
    sh->evaluated.assign(blocks.size(), 0);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      sh->state.load_old(i, model.block(blocks[i]).logic->reset_state());
    }
    if (cfg_.scheduler == SchedulerKind::kWorklist) {
      sh->worklist.reserve(blocks.size());
      sh->state_fixed.assign(blocks.size(), 0);
      sh->pending_input.assign(blocks.size(), 0);
      // Same skippability rule as the sequential engine: every link the
      // block touches must be combinational (registered banks would rot
      // behind the pointer flip, and registered inputs change without a
      // change event).
      sh->skippable.assign(blocks.size(), 1);
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        const BlockInstance& blk = model.block(blocks[i]);
        for (const LinkId l : blk.input_links) {
          if (model.link(l).kind != LinkKind::kCombinational) {
            sh->skippable[i] = 0;
          }
        }
        for (const LinkId l : blk.output_links) {
          if (model.link(l).kind != LinkKind::kCombinational) {
            sh->skippable[i] = 0;
          }
        }
      }
    }
    if (!blocks.empty()) {
      // Per-shard cursor rotation, domain-separated by shard index so
      // the shards do not all start at congruent positions.
      sh->rr_next = schedule_rr_offset(
          cfg_.schedule_seed == 1 ? 1 : cfg_.schedule_seed + 0x9e37u * (s + 1),
          blocks.size());
      sh->rr_init = sh->rr_next;
    }
    if (cfg_.scheduler == SchedulerKind::kCompiled &&
        cfg_.schedule == SchedulePolicy::kDynamic) {
      // Per-shard static schedule over the link graph restricted to this
      // shard's membership. Cut links have one endpoint elsewhere, so
      // they drop out of the tracked set and the emitted order treats
      // them as registered edges; the superstep loop in cycle_compiled
      // reconciles them through the mailbox.
      std::vector<char> member(n, 0);
      for (const BlockId b : blocks) {
        member[b] = 1;
      }
      analysis::StaticScheduleOptions opt;
      opt.include_blocks = &member;
      sh->compiled.emplace(analysis::build_compiled_schedule(model, opt));
    }
    shards_.push_back(std::move(sh));
  }

  // Subscribe each reading shard to its incoming cut links.
  for (LinkId l = 0; l < model.num_links(); ++l) {
    const std::size_t slot = slot_of_link_[l];
    if (slot == kNoSlot) {
      continue;
    }
    const LinkInfo& info = model.link(l);
    const std::size_t writer_shard = part_.shard_of[info.writer->block];
    std::vector<char> subscribed(k, 0);
    for (const Endpoint& r : info.readers) {
      const std::size_t rs = part_.shard_of[r.block];
      if (rs == writer_shard || subscribed[rs]) {
        continue;
      }
      subscribed[rs] = 1;
      shards_[rs]->incoming.push_back(InSlot{l, slot, 0, info.kind});
    }
    if (cfg_.scheduler == SchedulerKind::kWorklist &&
        std::none_of(subscribed.begin(), subscribed.end(),
                     [](char c) { return c != 0; })) {
      // A mailbox slot with no subscribing shard means the link's reader
      // set dissolved under partitioning: change events would be
      // published that no worklist ever receives, and the scheduler
      // would sit at the delta budget waiting for a wakeup that never
      // comes. Structurally unreachable today (a link only gets a slot
      // because some cross-shard reader exists, and that reader's shard
      // subscribes), but cheap to refuse outright instead of hanging.
      throw ContextualError(
          "cut link '" + info.name +
              "' has an empty reader set after partitioning",
          {{"link", std::to_string(l)},
           {"name", info.name},
           {"scheduler", scheduler_kind_name(cfg_.scheduler)}});
    }
  }

  threads_.reserve(k - 1);
  for (std::size_t s = 1; s < k; ++s) {
    threads_.emplace_back([this, s] { worker_main(s); });
  }
}

ShardedSimulator::~ShardedSimulator() {
  if (!threads_.empty()) {
    stop_ = true;            // workers read this after the release barrier
    barrier_->sync(0);
    for (std::thread& t : threads_) {
      t.join();
    }
  }
}

void ShardedSimulator::worker_main(std::size_t s) {
  while (true) {
    barrier_->sync(0);  // wait for the coordinator's next command
    if (stop_) {
      return;
    }
    run_cycle(s);
  }
}

void ShardedSimulator::set_external_input(LinkId link, const BitVector& value) {
  check_external_input(model_, link);
  // Workers are parked at the command barrier between steps, so writing
  // every replica directly is race-free; the barrier's release/acquire
  // pair publishes the values to them.
  bool changed = false;
  for (const std::size_t s : link_shards_[link]) {
    changed = shards_[s]->links.write(link, value) || changed;
  }
  if (changed && cfg_.scheduler == SchedulerKind::kWorklist) {
    // Wake the quiescence fast path: the readers have fresh input, so
    // the next cycle's seeding must not skip them.
    for (const Endpoint& reader : model_.link(link).readers) {
      shards_[part_.shard_of[reader.block]]
          ->pending_input[local_of_[reader.block]] = 1;
    }
  }
}

const BitVector& ShardedSimulator::link_value(LinkId link) const {
  TMSIM_CHECK_MSG(link < model_.num_links(), "link index out of range");
  return shards_[link_home_[link]]->links.read(link);
}

const BitVector& ShardedSimulator::block_state(BlockId block) const {
  TMSIM_CHECK_MSG(block < model_.num_blocks(), "block index out of range");
  return shards_[part_.shard_of[block]]->state.read_old(local_of_[block]);
}

void ShardedSimulator::load_block_state(BlockId block, const BitVector& value) {
  TMSIM_CHECK_MSG(block < model_.num_blocks(), "block index out of range");
  Shard& sh = *shards_[part_.shard_of[block]];
  sh.state.load_old(local_of_[block], value);
  if (cfg_.scheduler == SchedulerKind::kWorklist) {
    // The committed state changed behind the block's back: any cached
    // fixed-point claim is stale, so force a re-evaluation next cycle.
    sh.state_fixed[local_of_[block]] = 0;
  }
}

void ShardedSimulator::load_link_value(LinkId link, const BitVector& value) {
  TMSIM_CHECK_MSG(link < model_.num_links(), "link index out of range");
  // Workers are parked at the command barrier, so writing the
  // authoritative copy and every reader replica directly is race-free.
  for (const std::size_t s : link_shards_[link]) {
    shards_[s]->links.write(link, value);
  }
  const std::size_t slot = slot_of_link_[link];
  if (slot != kNoSlot) {
    // Re-publish through the mailbox too: a restore into an engine whose
    // previous cycle was abandoned mid-exchange would otherwise have a
    // stale slot version overwrite the restored replica at the next
    // poll. The delivery is idempotent — the replica already holds the
    // value, so the poll's change detection fires no destabilization.
    mailbox_->publish(slot, value);
  }
}

SchedulerCheckpoint ShardedSimulator::scheduler_checkpoint() const {
  SchedulerCheckpoint s;
  if (cfg_.scheduler == SchedulerKind::kCompiled) {
    return s;  // the compiled schedule carries no dynamic state
  }
  s.rr_cursors.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& sh : shards_) {
    s.rr_cursors.push_back(sh->rr_next);
  }
  if (cfg_.scheduler == SchedulerKind::kWorklist) {
    // Scatter the per-shard quiescence flags back to model block order so
    // the snapshot is partition-independent.
    s.state_fixed.assign(model_.num_blocks(), 0);
    s.pending_input.assign(model_.num_blocks(), 0);
    for (const std::unique_ptr<Shard>& sh : shards_) {
      for (std::size_t i = 0; i < sh->blocks.size(); ++i) {
        s.state_fixed[sh->blocks[i]] = sh->state_fixed[i];
        s.pending_input[sh->blocks[i]] = sh->pending_input[i];
      }
    }
  }
  return s;
}

void ShardedSimulator::restore_scheduler_state(
    const SchedulerCheckpoint& sched) {
  // Workers are parked at the command barrier; direct writes are
  // race-free. A snapshot whose shape does not match (different shard
  // count, different model, or empty) canonicalizes: cursors back to
  // their seeded offsets, flags cleared — committed results cannot
  // depend on this by the engine contract, only StepStats can.
  const bool cursors_ok = sched.rr_cursors.size() == shards_.size();
  const bool flags_ok =
      sched.state_fixed.size() == model_.num_blocks() &&
      sched.pending_input.size() == model_.num_blocks();
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    Shard& sh = *shards_[si];
    const std::size_t ln = sh.blocks.size();
    sh.rr_next = (cursors_ok && ln > 0 && sched.rr_cursors[si] < ln)
                     ? sched.rr_cursors[si]
                     : sh.rr_init;
    if (cfg_.scheduler == SchedulerKind::kWorklist) {
      for (std::size_t i = 0; i < ln; ++i) {
        sh.state_fixed[i] = flags_ok ? sched.state_fixed[sh.blocks[i]] : 0;
        sh.pending_input[i] = flags_ok ? sched.pending_input[sh.blocks[i]] : 0;
      }
    }
  }
}

StepStats ShardedSimulator::step() {
  barrier_->sync(0);  // release the workers into this cycle
  run_cycle(0);
  // run_cycle ends with a barrier, so every shard is quiescent and its
  // outcome fields are visible here.
  for (const std::unique_ptr<Shard>& sh : shards_) {
    if (sh->error) {
      std::rethrow_exception(sh->error);
    }
  }
  bool failed = false;
  for (const std::unique_ptr<Shard>& sh : shards_) {
    failed = failed || sh->cycle_failed;
  }
  if (failed) {
    ConvergenceReport r;
    r.cycle = cycle_;
    r.num_blocks = model_.num_blocks();
    for (const std::unique_ptr<Shard>& sh : shards_) {
      r.delta_cycles += sh->report.delta_cycles;
      r.limit += sh->report.limit;
      r.link_changes += sh->report.link_changes;
      r.oscillating_blocks.insert(r.oscillating_blocks.end(),
                                  sh->report.oscillating_blocks.begin(),
                                  sh->report.oscillating_blocks.end());
    }
    std::sort(r.oscillating_blocks.begin(), r.oscillating_blocks.end());
    r.oscillating_blocks.erase(
        std::unique(r.oscillating_blocks.begin(), r.oscillating_blocks.end()),
        r.oscillating_blocks.end());
    // Merge the per-shard changed-link histories the way the sequential
    // engine's single history reads: newest first. True global ordering
    // is gone (the shards ran concurrently), so interleave round-robin
    // by recency depth — every shard's most recent change outranks any
    // shard's second-most-recent — which is deterministic for a given
    // partition. Dedup (a cut link can appear in both the writer's and a
    // reader's history) and cap at the same bound the sequential report
    // carries.
    for (std::size_t depth = 0;; ++depth) {
      bool any = false;
      for (const std::unique_ptr<Shard>& sh : shards_) {
        const std::vector<LinkId>& hist = sh->report.last_changed_links;
        if (depth >= hist.size()) {
          continue;
        }
        any = true;
        if (std::find(r.last_changed_links.begin(), r.last_changed_links.end(),
                      hist[depth]) == r.last_changed_links.end()) {
          r.last_changed_links.push_back(hist[depth]);
        }
      }
      if (!any || r.last_changed_links.size() >= Shard::kChangedLinkHistory) {
        break;
      }
    }
    if (r.last_changed_links.size() > Shard::kChangedLinkHistory) {
      r.last_changed_links.resize(Shard::kChangedLinkHistory);
    }
    if (observer_) {
      observer_->on_convergence_failure(*this, r);
    }
    throw ConvergenceError(r);
  }

  StepStats total;
  std::uint64_t first_evals = 0;
  for (const std::unique_ptr<Shard>& sh : shards_) {
    total.delta_cycles += sh->stats.delta_cycles;
    total.link_changes += sh->stats.link_changes;
    total.cut_publishes += sh->stats.cut_publishes;
    total.barrier_spins += sh->stats.barrier_spins;
    total.skipped_blocks += sh->stats.skipped_blocks;
    total.worklist_high_water =
        std::max(total.worklist_high_water, sh->stats.worklist_high_water);
    first_evals += sh->first_evals;
  }
  // Explicit first-evaluation accounting, identical under every schedule
  // and scheduler: re-evaluations are delta cycles beyond each block's
  // first. (The old derivation num_blocks - skipped_blocks underflowed
  // when a cycle was abandoned before every block had evaluated.)
  total.re_evaluations = total.delta_cycles - first_evals;
  // Every shard executes the same number of barrier-aligned supersteps.
  total.settle_rounds = shards_[0]->supersteps;
  total_delta_cycles_ += total.delta_cycles;
  total_supersteps_ += shards_[0]->supersteps;
  ++cycle_;
  if (observer_) {
    observer_->on_cycle_commit(*this, total);
  }
  return total;
}

void ShardedSimulator::rebase(SystemCycle cycle, DeltaCycle total_deltas) {
  cycle_ = cycle;
  total_delta_cycles_ = total_deltas;
}

void ShardedSimulator::run_cycle(std::size_t s) {
  Shard& sh = *shards_[s];
  sh.stats = StepStats{};
  sh.diverged = false;
  sh.cycle_failed = false;
  sh.supersteps = 0;
  sh.error = nullptr;
  sh.report = ConvergenceReport{};
  sh.recent_changed_count = 0;
  std::fill(sh.evaluated.begin(), sh.evaluated.end(), 0);
  sh.first_evals = 0;
  if (observer_) {
    sh.mark_ns = steady_ns();
  }
  switch (cfg_.schedule) {
    case SchedulePolicy::kStatic:
      cycle_static(sh);
      break;
    case SchedulePolicy::kDynamic:
      cycle_dynamic(sh);
      break;
    case SchedulePolicy::kTwoPhaseOracle:
      cycle_two_phase(sh);
      break;
  }
  if (!sh.cycle_failed) {
    // End of system cycle, shard-locally: pointer-flip the state banks
    // and registered link banks (§4.1). On a failed cycle the engine is
    // left un-flipped, matching the sequential engine's throw path.
    sh.state.swap_banks();
    sh.links.swap_registered_banks();
  } else {
    fill_report(sh);
  }
  barrier_->sync(0);  // cycle complete; the coordinator aggregates next
}

void ShardedSimulator::cycle_static(Shard& sh) {
  guarded(sh, [&] {
    std::fill(sh.unstable.begin(), sh.unstable.end(), 0);
    sh.unstable_count = 0;
    evaluate_all_local(sh);
  });
  exchange_round(sh);
}

void ShardedSimulator::cycle_dynamic(Shard& sh) {
  if (cfg_.scheduler == SchedulerKind::kCompiled) {
    cycle_compiled(sh);
    return;
  }
  const bool worklist = cfg_.scheduler == SchedulerKind::kWorklist;
  if (worklist) {
    guarded(sh, [&] { seed_worklist_cycle(sh); });
  } else {
    guarded(sh, [&] {
      sh.links.reset_all_hbr();
      std::fill(sh.unstable.begin(), sh.unstable.end(), 1);
      sh.unstable_count = sh.blocks.size();
    });
  }
  // Belt-and-braces superstep cap: the per-shard evaluation budget in
  // settle_local() already guarantees termination (an oscillation keeps
  // at least one shard evaluating every round), this bounds rounds too.
  const std::size_t superstep_cap =
      cfg_.max_evals_per_block * model_.num_blocks();
  while (true) {
    guarded(sh, [&] {
      if (worklist) {
        settle_local_worklist(sh);
      } else {
        settle_local(sh);
      }
    });
    if (sh.supersteps >= superstep_cap) {
      sh.diverged = true;
    }
    const bool more = exchange_round(sh);
    if (sh.cycle_failed || !more) {
      return;
    }
  }
}

void ShardedSimulator::seed_worklist_cycle(Shard& sh) {
  // Worklist analogue of the dense cycle seeding: instead of marking
  // every block unstable, a block whose links are all combinational,
  // whose last committed evaluation was a state fixed point, and whose
  // inputs carry no pending activity is *skipped* — its old-bank word is
  // carried over so the end-of-cycle bank flip cannot rot it, and it is
  // never pushed. A skipped block is still woken mid-cycle the moment
  // any input changes (destabilize_local pushes it), so the fixed point
  // reached is the same one the dense sweep reaches — the quiescence
  // fast path only elides evaluations whose outputs are already final.
  sh.links.reset_all_hbr();
  sh.worklist.clear();
  sh.wl_head = 0;
  sh.unstable_count = 0;
  const std::size_t ln = sh.blocks.size();
  for (std::size_t i = 0; i < ln; ++i) {
    if (sh.skippable[i] && sh.state_fixed[i] && !sh.pending_input[i]) {
      sh.state.carry_over(i);
      ++sh.stats.skipped_blocks;
      sh.unstable[i] = 0;
    } else {
      sh.unstable[i] = 1;
      ++sh.unstable_count;
      sh.worklist.push_back(i);
    }
  }
  sh.stats.worklist_high_water = std::max(
      sh.stats.worklist_high_water,
      static_cast<std::uint64_t>(sh.worklist.size()));
}

void ShardedSimulator::settle_local_worklist(Shard& sh) {
  // Phase A under kWorklist: drain the FIFO instead of scanning the
  // unstable bitmap. The invariant "flag set <=> on the unconsumed part
  // of the FIFO" is maintained by seed_worklist_cycle and
  // destabilize_local, so pickup is O(1) with no dense scan. The
  // sequential engine's self-loop recheck is omitted: combinational
  // self-loops are rejected at construction (check_scheduler_topology).
  const DeltaCycle budget = cfg_.max_evals_per_block * sh.blocks.size();
  while (sh.wl_head < sh.worklist.size()) {
    const std::size_t i = sh.worklist[sh.wl_head++];
    sh.unstable[i] = 0;
    --sh.unstable_count;
    evaluate_block(sh, i);
    if (sh.stats.delta_cycles > budget) {
      sh.diverged = true;
      return;
    }
  }
  // Fully drained: recycle the storage so the FIFO never grows beyond
  // the cycle's event count (phase B refills it for the next superstep).
  sh.worklist.clear();
  sh.wl_head = 0;
}

void ShardedSimulator::cycle_two_phase(Shard& sh) {
  // Ablation schedule, same contract as the sequential engine: correct
  // only for designs whose outputs depend on registered state alone.
  // Pass 1 publishes every output (final, under that contract); the
  // exchange delivers cut-link values; pass 2 recomputes every next
  // state from final link values.
  guarded(sh, [&] {
    sh.links.reset_all_hbr();
    std::fill(sh.unstable.begin(), sh.unstable.end(), 0);
    sh.unstable_count = 0;
  });
  for (int pass = 0; pass < 2; ++pass) {
    guarded(sh, [&] { evaluate_all_local(sh); });
    exchange_round(sh);
    if (sh.cycle_failed) {
      return;
    }
  }
}

void ShardedSimulator::cycle_compiled(Shard& sh) {
  // Compiled superstep loop: each phase A replays the shard's build-time
  // schedule in full against the latest replica values — no HBR bits, no
  // per-block destabilization across the cut. Phase B's deliveries mark
  // readers unstable purely so barrier 2 can agree on "someone received
  // a changed cut value"; the next phase A clears the bits and re-runs
  // everything. Cross-shard combinational chains converge in one extra
  // superstep per cut depth (a block-Jacobi sweep toward the same unique
  // fixed point the sequential schedule reaches); a genuinely oscillating
  // cross-shard loop ping-pongs to the superstep cap and diverges.
  const std::size_t superstep_cap =
      cfg_.max_evals_per_block * model_.num_blocks();
  while (true) {
    guarded(sh, [&] {
      std::fill(sh.unstable.begin(), sh.unstable.end(), 0);
      sh.unstable_count = 0;
      run_compiled_schedule(sh);
    });
    if (sh.supersteps >= superstep_cap) {
      sh.diverged = true;
    }
    const bool more = exchange_round(sh);
    if (sh.cycle_failed || !more) {
      return;
    }
  }
}

void ShardedSimulator::run_compiled_schedule(Shard& sh) {
  for (const analysis::CompiledOp& op : sh.compiled->ops) {
    if (op.kind == analysis::CompiledOpKind::kSettle) {
      settle_scc_local(sh, op.scc);
      if (sh.diverged) {
        return;
      }
    } else {
      // kEval and kDrive run identically at execution time; the split
      // only matters for the emission proof (see static_schedule.h).
      evaluate_block_compiled(sh, local_of_[op.block], nullptr);
    }
  }
}

void ShardedSimulator::settle_scc_local(Shard& sh, std::uint32_t scc_index) {
  // Scoped worklist over one strongly connected component, confined to
  // this shard (tracked links need both endpoints in the shard, so an
  // SCC can never straddle the cut). Mirrors the sequential engine's
  // settle_scc, with the cooperative divergence protocol instead of a
  // throw: leave the members' unstable bits set for the merged report.
  const analysis::CompiledScc& scc = sh.compiled->sccs[scc_index];
  const std::size_t m = scc.blocks.size();
  sh.scc_unstable.assign(m, 1);
  std::size_t remaining = m;
  for (const BlockId b : scc.blocks) {
    sh.unstable[local_of_[b]] = 1;  // report mirror, not counted
  }
  const DeltaCycle limit = cfg_.max_evals_per_block * m;
  CompiledSettleCtx ctx{&scc, scc_index + 1, &sh.scc_unstable, &remaining};
  std::size_t cursor = 0;
  DeltaCycle spent = 0;
  while (remaining > 0) {
    // Bounded cursor scan: a desynchronized remaining-count with an
    // all-zero bitmap must fail structurally, not spin (same guard as
    // the dense round-robin in settle_local).
    std::size_t scanned = 0;
    while (sh.scc_unstable[cursor] == 0) {
      cursor = (cursor + 1) % m;
      if (++scanned > m) {
        sh.diverged = true;
        return;
      }
    }
    const std::size_t mi = cursor;
    cursor = (cursor + 1) % m;
    sh.scc_unstable[mi] = 0;
    --remaining;
    evaluate_block_compiled(sh, local_of_[scc.blocks[mi]], &ctx);
    if (++spent > limit) {
      sh.diverged = true;
      return;
    }
  }
  for (const BlockId b : scc.blocks) {
    sh.unstable[local_of_[b]] = 0;
  }
}

void ShardedSimulator::evaluate_block_compiled(Shard& sh, std::size_t local,
                                               const CompiledSettleCtx* ctx) {
  // Lean compiled-mode evaluation: no HBR marking and — crucially — no
  // same-shard destabilization outside a settle context. The full
  // schedule replay makes intra-shard wakeups redundant, and marking
  // them would keep unstable_count nonzero forever (an infinite
  // superstep loop). Cut publication is identical to evaluate_block.
  const BlockId b = sh.blocks[local];
  const BlockInstance& blk = model_.block(b);
  const SimBlock& logic = *blk.logic;
  const std::size_t n_in = logic.num_inputs();
  const std::size_t n_out = logic.num_outputs();

  if (sh.in_scratch.size() < n_in) {
    sh.in_scratch.resize(n_in, BitVector(0));
  }
  if (sh.out_scratch.size() < n_out) {
    sh.out_scratch.resize(n_out, BitVector(0));
  }
  for (std::size_t p = 0; p < n_in; ++p) {
    sh.in_scratch[p] = sh.links.read(blk.input_links[p]);
  }
  if (sh.state_scratch.width() != logic.state_width()) {
    sh.state_scratch = BitVector(logic.state_width());
  }
  for (std::size_t p = 0; p < n_out; ++p) {
    if (sh.out_scratch[p].width() != logic.output_width(p)) {
      sh.out_scratch[p] = BitVector(logic.output_width(p));
    }
  }

  logic.evaluate(sh.state.read_old(local),
                 std::span<const BitVector>(sh.in_scratch.data(), n_in),
                 sh.state_scratch,
                 std::span<BitVector>(sh.out_scratch.data(), n_out));

  // A drive op's state write is harmlessly overwritten by the block's
  // later committing eval (write_new overwrites; the last evaluation in
  // the op sequence always sees all-final inputs).
  sh.state.write_new(local, sh.state_scratch);

  for (std::size_t p = 0; p < n_out; ++p) {
    const LinkId l = blk.output_links[p];
    const bool changed = sh.links.write(l, sh.out_scratch[p]);
    const std::size_t slot = slot_of_link_[l];
    if (model_.link(l).kind == LinkKind::kCombinational) {
      if (changed) {
        ++sh.stats.link_changes;
        sh.recent_changed_links[sh.recent_changed_count++ %
                                Shard::kChangedLinkHistory] = l;
        if (ctx && sh.compiled->scc_of_link[l] == ctx->scc_id) {
          // Intra-SCC edge changed mid-settle: wake the (single) reader.
          const BlockId r = model_.link(l).readers.front().block;
          const auto it = std::lower_bound(ctx->scc->blocks.begin(),
                                           ctx->scc->blocks.end(), r);
          const std::size_t mi =
              static_cast<std::size_t>(it - ctx->scc->blocks.begin());
          if (!(*ctx->unstable)[mi]) {
            (*ctx->unstable)[mi] = 1;
            ++*ctx->remaining;
          }
          sh.unstable[local_of_[r]] = 1;  // report mirror
        }
        if (slot != kNoSlot) {
          mailbox_->publish(slot, sh.out_scratch[p]);
          ++sh.stats.cut_publishes;
        }
      }
    } else if (slot != kNoSlot) {
      mailbox_->publish(slot, sh.out_scratch[p]);
      ++sh.stats.cut_publishes;
    }
  }

  if (!sh.evaluated[local]) {
    sh.evaluated[local] = 1;
    ++sh.first_evals;
  }
  ++sh.stats.delta_cycles;
}

bool ShardedSimulator::exchange_round(Shard& sh) {
  ++sh.supersteps;
  // Observer timing: the settle/evaluation phase ran since mark_ns; the
  // two barriers plus the exchange form the synchronization tail.
  const std::uint64_t settle_end_ns = observer_ ? steady_ns() : 0;
  // Barrier 1: agree whether any shard diverged or threw during the
  // evaluation phase. Every shard sees the same sum, so every shard
  // abandons the cycle at the same point — no worker is left behind at
  // a barrier the others will never reach.
  const std::uint64_t failures =
      barrier_->sync((sh.diverged || sh.error) ? 1 : 0, &sh.stats.barrier_spins);
  if (failures > 0) {
    sh.cycle_failed = true;
    return false;
  }
  guarded(sh, [&] { apply_incoming(sh); });
  // Barrier 2: agree on the number of unstable blocks anywhere (with a
  // sentinel for exchange-phase errors). Zero means the system-wide
  // link fixed point is reached.
  const std::uint64_t unstable = barrier_->sync(
      sh.error ? kErrorSentinel : sh.unstable_count, &sh.stats.barrier_spins);
  if (observer_) {
    // Called from every worker thread concurrently; SimObserver
    // implementations synchronize internally.
    const std::uint64_t end_ns = steady_ns();
    observer_->on_superstep(sh.index, total_supersteps_ + sh.supersteps - 1,
                            settle_end_ns - sh.mark_ns,
                            end_ns - settle_end_ns);
    sh.mark_ns = end_ns;
  }
  if (unstable >= kErrorSentinel) {
    sh.cycle_failed = true;
    return false;
  }
  return unstable != 0;
}

void ShardedSimulator::settle_local(Shard& sh) {
  const std::size_t ln = sh.blocks.size();
  const DeltaCycle budget = cfg_.max_evals_per_block * ln;
  while (sh.unstable_count > 0) {
    // Local §4.2 round-robin over this shard's non-stable blocks. The
    // scan is bounded: unstable_count > 0 with an all-zero bitmap is a
    // bookkeeping desync, and a full lap proves it — fail the cycle
    // structurally instead of spinning on the cursor forever.
    std::size_t scanned = 0;
    while (sh.unstable[sh.rr_next] == 0) {
      sh.rr_next = (sh.rr_next + 1) % ln;
      if (++scanned > ln) {
        sh.diverged = true;
        return;
      }
    }
    const std::size_t i = sh.rr_next;
    sh.rr_next = (sh.rr_next + 1) % ln;
    sh.unstable[i] = 0;
    --sh.unstable_count;

    evaluate_block(sh, i);

    // Self-loop safety, as in the sequential engine: re-check the HBR
    // bits directly so a bookkeeping bug cannot end a cycle early.
    if (sh.unstable[i] == 0 && !inputs_all_read(sh, sh.blocks[i])) {
      destabilize_local(sh, sh.blocks[i]);
    }
    if (sh.stats.delta_cycles > budget) {
      sh.diverged = true;
      return;
    }
  }
}

void ShardedSimulator::evaluate_all_local(Shard& sh) {
  for (std::size_t i = 0; i < sh.blocks.size(); ++i) {
    evaluate_block(sh, i);
  }
}

void ShardedSimulator::evaluate_block(Shard& sh, std::size_t local) {
  if (cfg_.scheduler == SchedulerKind::kWorklist) {
    // Everything pending is consumed by this evaluation; activity that
    // arrives later (same-shard writes below, phase B deliveries,
    // external inputs) re-marks it.
    sh.pending_input[local] = 0;
  }
  const BlockId b = sh.blocks[local];
  const BlockInstance& blk = model_.block(b);
  const SimBlock& logic = *blk.logic;
  const std::size_t n_in = logic.num_inputs();
  const std::size_t n_out = logic.num_outputs();

  if (sh.in_scratch.size() < n_in) {
    sh.in_scratch.resize(n_in, BitVector(0));
  }
  if (sh.out_scratch.size() < n_out) {
    sh.out_scratch.resize(n_out, BitVector(0));
  }

  // Latch inputs from the shard-local LinkMemory (cut links read the
  // local replica) and set their HBR bits.
  for (std::size_t p = 0; p < n_in; ++p) {
    const LinkId l = blk.input_links[p];
    sh.in_scratch[p] = sh.links.read(l);
    if (model_.link(l).kind == LinkKind::kCombinational) {
      sh.links.mark_read(l);
    }
  }

  if (sh.state_scratch.width() != logic.state_width()) {
    sh.state_scratch = BitVector(logic.state_width());
  }
  for (std::size_t p = 0; p < n_out; ++p) {
    if (sh.out_scratch[p].width() != logic.output_width(p)) {
      sh.out_scratch[p] = BitVector(logic.output_width(p));
    }
  }

  logic.evaluate(sh.state.read_old(local),
                 std::span<const BitVector>(sh.in_scratch.data(), n_in),
                 sh.state_scratch,
                 std::span<BitVector>(sh.out_scratch.data(), n_out));

  if (cfg_.scheduler == SchedulerKind::kWorklist) {
    // State fixed point: a pure evaluate() that mapped old == new will
    // reproduce this exact evaluation as long as the inputs stay put —
    // the precondition the quiescence fast path relies on.
    sh.state_fixed[local] =
        sh.state_scratch == sh.state.read_old(local) ? 1 : 0;
  }
  sh.state.write_new(local, sh.state_scratch);

  for (std::size_t p = 0; p < n_out; ++p) {
    const LinkId l = blk.output_links[p];
    const bool changed = sh.links.write(l, sh.out_scratch[p]);
    const std::size_t slot = slot_of_link_[l];
    if (model_.link(l).kind == LinkKind::kCombinational) {
      if (changed) {
        ++sh.stats.link_changes;
        sh.recent_changed_links[sh.recent_changed_count++ %
                                Shard::kChangedLinkHistory] = l;
        sh.links.clear_hbr(l);
        // Same-shard readers destabilize immediately; cross-shard
        // readers at their next exchange phase, via the mailbox.
        for (const Endpoint& reader : model_.link(l).readers) {
          if (part_.shard_of[reader.block] == sh.index) {
            destabilize_local(sh, reader.block);
          }
        }
        if (slot != kNoSlot) {
          mailbox_->publish(slot, sh.out_scratch[p]);
          ++sh.stats.cut_publishes;
        }
      }
    } else if (slot != kNoSlot) {
      // Registered cut link: publish every write — re-evaluation may
      // rewrite the new bank, and the reader's replica must converge to
      // the final value. Registered links never destabilize (§4.1).
      mailbox_->publish(slot, sh.out_scratch[p]);
      ++sh.stats.cut_publishes;
    }
  }

  if (!sh.evaluated[local]) {
    sh.evaluated[local] = 1;
    ++sh.first_evals;
  }
  ++sh.stats.delta_cycles;
}

void ShardedSimulator::apply_incoming(Shard& sh) {
  for (InSlot& in : sh.incoming) {
    if (!mailbox_->poll(in.slot, in.last_seen, sh.poll_scratch)) {
      continue;
    }
    const bool changed = sh.links.write(in.link, sh.poll_scratch);
    if (in.kind == LinkKind::kCombinational && changed) {
      // The replica changed under this shard's readers: the §4.2 rule,
      // one superstep late. link_changes was already counted by the
      // writing shard — don't double count here.
      sh.links.clear_hbr(in.link);
      for (const Endpoint& reader : model_.link(in.link).readers) {
        if (part_.shard_of[reader.block] == sh.index) {
          destabilize_local(sh, reader.block);
        }
      }
    }
  }
}

void ShardedSimulator::destabilize_local(Shard& sh, BlockId global) {
  const std::size_t i = local_of_[global];
  if (cfg_.scheduler == SchedulerKind::kWorklist) {
    sh.pending_input[i] = 1;
  }
  if (sh.unstable[i] == 0) {
    sh.unstable[i] = 1;
    ++sh.unstable_count;
    if (cfg_.scheduler == SchedulerKind::kWorklist &&
        cfg_.schedule == SchedulePolicy::kDynamic) {
      // Push iff the flag transitioned — `unstable` doubles as the
      // FIFO's dedup guard. Gated on kDynamic: the other schedules never
      // drain the worklist, so pushing would leak entries across cycles.
      sh.worklist.push_back(i);
      sh.stats.worklist_high_water =
          std::max(sh.stats.worklist_high_water,
                   static_cast<std::uint64_t>(sh.worklist.size() - sh.wl_head));
    }
  }
}

bool ShardedSimulator::inputs_all_read(const Shard& sh, BlockId global) const {
  const BlockInstance& blk = model_.block(global);
  for (const LinkId l : blk.input_links) {
    if (model_.link(l).kind == LinkKind::kCombinational &&
        !sh.links.has_been_read(l)) {
      return false;
    }
  }
  return true;
}

void ShardedSimulator::fill_report(Shard& sh) {
  sh.report.delta_cycles = sh.stats.delta_cycles;
  sh.report.limit = cfg_.max_evals_per_block * sh.blocks.size();
  sh.report.num_blocks = sh.blocks.size();
  sh.report.link_changes = sh.stats.link_changes;
  for (std::size_t i = 0; i < sh.blocks.size(); ++i) {
    if (sh.unstable[i]) {
      sh.report.oscillating_blocks.push_back(sh.blocks[i]);
    }
  }
  // A cycle can fail at the divergence barrier before the exchange
  // applies pending cut-link changes. The local readers of those links
  // are the cross-shard half of the oscillation — the sequential engine
  // would already have them marked unstable at trip time. Every
  // producer is quiescent past that barrier, so the versions are final.
  for (const InSlot& in : sh.incoming) {
    if (in.kind != LinkKind::kCombinational ||
        mailbox_->version(in.slot) == in.last_seen) {
      continue;
    }
    for (const Endpoint& r : model_.link(in.link).readers) {
      if (part_.shard_of[r.block] == sh.index &&
          !sh.unstable[local_of_[r.block]]) {
        sh.unstable[local_of_[r.block]] = 1;
        sh.report.oscillating_blocks.push_back(r.block);
      }
    }
  }
  const std::size_t have =
      std::min(sh.recent_changed_count, Shard::kChangedLinkHistory);
  for (std::size_t i = 0; i < have; ++i) {
    sh.report.last_changed_links.push_back(
        sh.recent_changed_links[(sh.recent_changed_count - 1 - i) %
                                Shard::kChangedLinkHistory]);
  }
}

template <typename F>
void ShardedSimulator::guarded(Shard& sh, F&& f) {
  if (sh.error) {
    return;  // already broken; only keep the barrier protocol aligned
  }
  try {
    std::forward<F>(f)();
  } catch (...) {
    sh.error = std::current_exception();
  }
}

}  // namespace tmsim::core
