// Engine: the contract every host-side simulation engine fulfils.
//
// The paper's engine is the sequential time-multiplexed simulator of §4
// (SequentialSimulator). The sharded bulk-synchronous engine
// (ShardedSimulator) recovers the parallelism §4 traded away while
// keeping the same observable semantics. Everything above the engines —
// the NoC facade, the FPGA design model, the differential test harness —
// talks to this interface, so swapping engines can never change what a
// workload observes, only how fast it runs.
//
// Shared vocabulary (§4): a *system cycle* is one clock cycle of the
// simulated parallel design; a *delta cycle* is one block evaluation and
// does not advance simulated time.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/bit_vector.h"
#include "common/error.h"
#include "common/types.h"
#include "core/system_model.h"

namespace tmsim::core {

enum class SchedulePolicy : std::uint8_t {
  kStatic = 0,
  kDynamic = 1,
  kTwoPhaseOracle = 2,
};

/// How the dynamic (§4.2) schedule picks the next non-stable block.
///
///  - kRoundRobin: the paper's Fig. 5 scheduler — a dense sweep over the
///    unstable bitmap. O(num_blocks) scan work per delta sweep even when
///    almost every block is stable. This is the reference semantics.
///  - kWorklist: event-driven. Clearing a link's HBR bit pushes exactly
///    that link's readers onto a dedup'd FIFO worklist (the reader index
///    is the link topology itself), so pickup is O(1) per event. A
///    per-system-cycle quiescence fast path additionally skips blocks
///    with no pending input activity whose last evaluation was a state
///    fixed point: re-evaluating such a block would reproduce last
///    cycle's outputs and state bit-for-bit, so not evaluating it at all
///    is invisible. Results are bit-identical to kRoundRobin by the
///    engine contract (tests/integration/sched_equivalence_test.cpp
///    proves it differentially); only StepStats may differ.
enum class SchedulerKind : std::uint8_t {
  kRoundRobin = 0,
  kWorklist = 1,
};

const char* scheduler_kind_name(SchedulerKind k);

/// Diagnostic snapshot taken when a schedule gives up on a system cycle:
/// which blocks were still unstable, which links changed most recently,
/// and how far past the budget the settling ran. A host can turn this
/// into a graceful run-abort with a useful report instead of an opaque
/// crash deep inside a multi-hour simulation.
struct ConvergenceReport {
  SystemCycle cycle = 0;          ///< system cycle that failed to settle
  DeltaCycle delta_cycles = 0;    ///< delta cycles spent in that cycle
  DeltaCycle limit = 0;           ///< the configured budget that was hit
  std::size_t num_blocks = 0;
  std::size_t link_changes = 0;   ///< changed link writes in that cycle
  /// Blocks still marked unstable when the budget ran out — the
  /// oscillating set (or its downstream cone).
  std::vector<BlockId> oscillating_blocks;
  /// Most recently changed links, newest first (bounded history).
  std::vector<LinkId> last_changed_links;

  std::string summary() const;
};

/// Thrown by the dynamic schedule instead of a bare Error; carries the
/// ConvergenceReport for the host to query.
class ConvergenceError : public ContextualError {
 public:
  explicit ConvergenceError(ConvergenceReport report);

  const ConvergenceReport& report() const { return report_; }

 private:
  ConvergenceReport report_;
};

/// Per-system-cycle accounting (the data behind §6's delta-cycle numbers).
struct StepStats {
  /// Block evaluations performed (== delta cycles).
  DeltaCycle delta_cycles = 0;
  /// delta_cycles minus the blocks evaluated at least once this cycle:
  /// the §4.2 re-evaluation overhead. For the round-robin scheduler the
  /// subtrahend is num_blocks; the worklist scheduler's quiescence fast
  /// path can evaluate fewer (see skipped_blocks).
  DeltaCycle re_evaluations = 0;
  /// Blocks the worklist scheduler's quiescence fast path did not
  /// evaluate at all this cycle (0 under round-robin).
  std::uint64_t skipped_blocks = 0;
  /// Deepest worklist occupancy seen this cycle (0 under round-robin).
  std::uint64_t worklist_high_water = 0;
  /// Combinational link writes whose value differed from memory.
  std::size_t link_changes = 0;
  /// Settle/exchange rounds the cycle took: 1 for the sequential
  /// schedules (one fixed-point search), the superstep count for the
  /// sharded engine.
  std::uint64_t settle_rounds = 1;
  /// Cut-link mailbox publishes (sharded engine only).
  std::uint64_t cut_publishes = 0;
  /// Barrier spin-loop iterations summed over shards (sharded only) —
  /// the wait-skew signal Manticore-style instrumentation watches.
  std::uint64_t barrier_spins = 0;
};

class Engine;

/// Engine-side observability hooks (DESIGN.md §10). The default
/// implementation of every callback is a no-op, and engines guard each
/// notification behind a null pointer check, so an unobserved run does
/// no extra work and is bit-identical to one on a build without the obs
/// subsystem (tests/obs/obs_off_test.cpp).
///
/// Threading: on_cycle_commit / on_convergence_failure arrive on the
/// thread that called Engine::step(); on_superstep arrives on sharded
/// worker threads *concurrently* — implementations must synchronize.
class SimObserver {
 public:
  virtual ~SimObserver();

  /// A system cycle committed (bank swap done); `eng.link_value()` /
  /// `eng.block_state()` see the newly committed values.
  virtual void on_cycle_commit(const Engine& eng, const StepStats& stats) {
    (void)eng;
    (void)stats;
  }

  /// One sharded superstep (settle + exchange) finished on `shard`.
  /// `settle_ns` / `barrier_ns` split the superstep's wall time into
  /// useful evaluation and barrier wait.
  virtual void on_superstep(std::size_t shard, std::uint64_t superstep,
                            std::uint64_t settle_ns,
                            std::uint64_t barrier_ns) {
    (void)shard;
    (void)superstep;
    (void)settle_ns;
    (void)barrier_ns;
  }

  /// The dynamic schedule is about to abandon the run; fires before the
  /// engine throws ConvergenceError, while link/state memories still
  /// hold the unsettled values (so a waveform ring can be flushed).
  virtual void on_convergence_failure(const Engine& eng,
                                      const ConvergenceReport& report) {
    (void)eng;
    (void)report;
  }
};

/// Point-in-time snapshot of an engine's committed architectural state
/// (DESIGN.md §11). Because every inter-block value of a combinational
/// model is recomputed from committed block state each cycle, the block
/// states plus the cycle counters are the *complete* resume state: an
/// engine restored from a checkpoint — any engine instance over the same
/// model, even one that just ran a different workload — continues
/// bit-identically. `digest` (FNV-1a over the serialized states) lets
/// the restore side verify integrity the same way the hardened host
/// verifies its commit-counter mirrors (§8).
struct EngineCheckpoint {
  SystemCycle cycle = 0;
  DeltaCycle total_delta_cycles = 0;
  std::vector<BitVector> block_states;  ///< one per block, model order
  std::uint64_t digest = 0;             ///< FNV-1a over the states

  bool empty() const { return block_states.empty(); }
};

/// Abstract engine over a finalized SystemModel. All engines must agree
/// bit-for-bit on block state and link values after every step(); only
/// StepStats (how much work the schedule did) may differ.
class Engine {
 public:
  virtual ~Engine();

  /// Drives an external-input link (takes effect for the next step()).
  /// Throws ContextualError when the link is block-driven or when no
  /// block reads it (a silently ignored stimulus is always a test bug).
  virtual void set_external_input(LinkId link, const BitVector& value) = 0;

  /// Current reader-visible value of any link. For combinational links
  /// this is the value driven during the last step(); for registered
  /// links, the value committed at its clock edge.
  virtual const BitVector& link_value(LinkId link) const = 0;

  /// Old-bank (committed) state of a block.
  virtual const BitVector& block_state(BlockId block) const = 0;

  /// Overwrites a block's committed state (reset preloading, testing).
  virtual void load_block_state(BlockId block, const BitVector& value) = 0;

  /// Simulates one system cycle.
  virtual StepStats step() = 0;

  virtual SystemCycle cycle() const = 0;
  virtual DeltaCycle total_delta_cycles() const = 0;
  virtual SchedulePolicy policy() const = 0;
  virtual const SystemModel& model() const = 0;

  /// Overwrites the cycle/delta accounting — the resume half of the
  /// checkpoint machinery (restore_checkpoint below). Only call between
  /// steps. Does not touch state or link memory.
  virtual void rebase(SystemCycle cycle, DeltaCycle total_deltas) = 0;

  /// Attaches an observer (nullptr detaches). Not owned; must outlive
  /// the engine or be detached first. Engines only touch it between
  /// steps, so attaching between step() calls is always safe.
  void set_observer(SimObserver* obs) { observer_ = obs; }
  SimObserver* observer() const { return observer_; }

 protected:
  SimObserver* observer_ = nullptr;
};

/// Builds the widths vector StateMemory needs from a model.
std::vector<std::size_t> block_state_widths(const SystemModel& model);

/// FNV-1a digest over every block's committed state — the cheap
/// bit-identity witness the farm's differential tests and checkpoint
/// verification both use.
std::uint64_t engine_state_digest(const Engine& eng);

/// Captures the committed state of `eng` between steps. Requires every
/// *internal* link of the model to be combinational (true of all NoC
/// models): registered internal links carry state this snapshot does not
/// include, so checkpointing such a model throws instead of silently
/// resuming wrong.
EngineCheckpoint save_checkpoint(const Engine& eng);

/// Loads `ck` into `eng` (same model shape required) and rebases the
/// cycle counters. Verifies the digest after the load and throws
/// ContextualError on mismatch. `eng` may be a different instance — or a
/// different Engine subclass — than the one that produced `ck`; external
/// inputs are NOT restored (drive them for the next cycle as usual).
void restore_checkpoint(Engine& eng, const EngineCheckpoint& ck);

/// Returns `eng` to its power-on state: every block reloaded with its
/// reset state, counters rebased to zero. This is what makes engine
/// instances reusable across farm jobs.
void reset_engine(Engine& eng);

/// Shared validation for Engine::set_external_input (the engines must
/// reject exactly the same misuses to stay substitutable).
void check_external_input(const SystemModel& model, LinkId link);

/// Degenerate-topology gate for the worklist scheduler, applied by both
/// engines at construction and re-checked (per shard) after
/// partitioning. Rejects, with a structured error instead of a hang at
/// the delta budget:
///  - combinational self-loop links (a block reading its own
///    combinational output), which the event-driven pickup would chase
///    in a tight requeue loop;
///  - external-input combinational links with an empty reader set: a
///    stimulus on such a link is an event that wakes nobody, so the
///    worklist would silently drop it (check_external_input catches the
///    drive; this catches the model).
/// No-op for kRoundRobin (the dense sweep tolerates both shapes, at
/// delta-budget cost).
void check_scheduler_topology(const SystemModel& model, SchedulerKind kind);

/// Initial round-robin cursor of a dynamic schedule for `schedule_seed`.
/// Seed 1 is canonical and maps to cursor 0 (the behaviour of every
/// paper figure); any other seed scatters the cursor via SplitMix so a
/// job-level seed perturbs the evaluation order — never the results.
std::size_t schedule_rr_offset(std::uint64_t schedule_seed,
                               std::size_t num_blocks);

}  // namespace tmsim::core
