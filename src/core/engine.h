// Engine: the contract every host-side simulation engine fulfils.
//
// The paper's engine is the sequential time-multiplexed simulator of §4
// (SequentialSimulator). The sharded bulk-synchronous engine
// (ShardedSimulator) recovers the parallelism §4 traded away while
// keeping the same observable semantics. Everything above the engines —
// the NoC facade, the FPGA design model, the differential test harness —
// talks to this interface, so swapping engines can never change what a
// workload observes, only how fast it runs.
//
// Shared vocabulary (§4): a *system cycle* is one clock cycle of the
// simulated parallel design; a *delta cycle* is one block evaluation and
// does not advance simulated time.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/bit_vector.h"
#include "common/error.h"
#include "common/types.h"
#include "core/system_model.h"

namespace tmsim::core {

enum class SchedulePolicy : std::uint8_t {
  kStatic = 0,
  kDynamic = 1,
  kTwoPhaseOracle = 2,
};

/// Diagnostic snapshot taken when a schedule gives up on a system cycle:
/// which blocks were still unstable, which links changed most recently,
/// and how far past the budget the settling ran. A host can turn this
/// into a graceful run-abort with a useful report instead of an opaque
/// crash deep inside a multi-hour simulation.
struct ConvergenceReport {
  SystemCycle cycle = 0;          ///< system cycle that failed to settle
  DeltaCycle delta_cycles = 0;    ///< delta cycles spent in that cycle
  DeltaCycle limit = 0;           ///< the configured budget that was hit
  std::size_t num_blocks = 0;
  std::size_t link_changes = 0;   ///< changed link writes in that cycle
  /// Blocks still marked unstable when the budget ran out — the
  /// oscillating set (or its downstream cone).
  std::vector<BlockId> oscillating_blocks;
  /// Most recently changed links, newest first (bounded history).
  std::vector<LinkId> last_changed_links;

  std::string summary() const;
};

/// Thrown by the dynamic schedule instead of a bare Error; carries the
/// ConvergenceReport for the host to query.
class ConvergenceError : public ContextualError {
 public:
  explicit ConvergenceError(ConvergenceReport report);

  const ConvergenceReport& report() const { return report_; }

 private:
  ConvergenceReport report_;
};

/// Per-system-cycle accounting (the data behind §6's delta-cycle numbers).
struct StepStats {
  /// Block evaluations performed (== delta cycles).
  DeltaCycle delta_cycles = 0;
  /// delta_cycles - num_blocks: the §4.2 re-evaluation overhead.
  DeltaCycle re_evaluations = 0;
  /// Combinational link writes whose value differed from memory.
  std::size_t link_changes = 0;
};

/// Abstract engine over a finalized SystemModel. All engines must agree
/// bit-for-bit on block state and link values after every step(); only
/// StepStats (how much work the schedule did) may differ.
class Engine {
 public:
  virtual ~Engine();

  /// Drives an external-input link (takes effect for the next step()).
  /// Throws ContextualError when the link is block-driven or when no
  /// block reads it (a silently ignored stimulus is always a test bug).
  virtual void set_external_input(LinkId link, const BitVector& value) = 0;

  /// Current reader-visible value of any link. For combinational links
  /// this is the value driven during the last step(); for registered
  /// links, the value committed at its clock edge.
  virtual const BitVector& link_value(LinkId link) const = 0;

  /// Old-bank (committed) state of a block.
  virtual const BitVector& block_state(BlockId block) const = 0;

  /// Overwrites a block's committed state (reset preloading, testing).
  virtual void load_block_state(BlockId block, const BitVector& value) = 0;

  /// Simulates one system cycle.
  virtual StepStats step() = 0;

  virtual SystemCycle cycle() const = 0;
  virtual DeltaCycle total_delta_cycles() const = 0;
  virtual SchedulePolicy policy() const = 0;
  virtual const SystemModel& model() const = 0;
};

/// Builds the widths vector StateMemory needs from a model.
std::vector<std::size_t> block_state_widths(const SystemModel& model);

/// Shared validation for Engine::set_external_input (the engines must
/// reject exactly the same misuses to stay substitutable).
void check_external_input(const SystemModel& model, LinkId link);

}  // namespace tmsim::core
