// Engine: the contract every host-side simulation engine fulfils.
//
// The paper's engine is the sequential time-multiplexed simulator of §4
// (SequentialSimulator). The sharded bulk-synchronous engine
// (ShardedSimulator) recovers the parallelism §4 traded away while
// keeping the same observable semantics. Everything above the engines —
// the NoC facade, the FPGA design model, the differential test harness —
// talks to this interface, so swapping engines can never change what a
// workload observes, only how fast it runs.
//
// Shared vocabulary (§4): a *system cycle* is one clock cycle of the
// simulated parallel design; a *delta cycle* is one block evaluation and
// does not advance simulated time.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/bit_vector.h"
#include "common/error.h"
#include "common/types.h"
#include "core/system_model.h"

namespace tmsim::core {

enum class SchedulePolicy : std::uint8_t {
  kStatic = 0,
  kDynamic = 1,
  kTwoPhaseOracle = 2,
};

/// How the dynamic (§4.2) schedule picks the next non-stable block.
///
///  - kRoundRobin: the paper's Fig. 5 scheduler — a dense sweep over the
///    unstable bitmap. O(num_blocks) scan work per delta sweep even when
///    almost every block is stable. This is the reference semantics.
///  - kWorklist: event-driven. Clearing a link's HBR bit pushes exactly
///    that link's readers onto a dedup'd FIFO worklist (the reader index
///    is the link topology itself), so pickup is O(1) per event. A
///    per-system-cycle quiescence fast path additionally skips blocks
///    with no pending input activity whose last evaluation was a state
///    fixed point: re-evaluating such a block would reproduce last
///    cycle's outputs and state bit-for-bit, so not evaluating it at all
///    is invisible. Results are bit-identical to kRoundRobin by the
///    engine contract (tests/integration/sched_equivalence_test.cpp
///    proves it differentially); only StepStats may differ.
///  - kCompiled: static. A build-time analysis pass
///    (src/analysis/static_schedule.h) condenses the combinational link
///    graph's strongly-connected components, topologically orders the
///    condensation, and emits a fixed op list executed verbatim every
///    system cycle — no HBR bookkeeping, no unstable bitmap, no
///    worklist for acyclic regions; true combinational cycles settle in
///    a scoped worklist confined to their SCC under the usual
///    convergence budget. Bit-identical to the dynamic schedulers by
///    the same differential proof (plus the 3-way `ctest -L compiled`
///    suite); only StepStats may differ.
enum class SchedulerKind : std::uint8_t {
  kRoundRobin = 0,
  kWorklist = 1,
  kCompiled = 2,
};

const char* scheduler_kind_name(SchedulerKind k);

/// Diagnostic snapshot taken when a schedule gives up on a system cycle:
/// which blocks were still unstable, which links changed most recently,
/// and how far past the budget the settling ran. A host can turn this
/// into a graceful run-abort with a useful report instead of an opaque
/// crash deep inside a multi-hour simulation.
struct ConvergenceReport {
  SystemCycle cycle = 0;          ///< system cycle that failed to settle
  DeltaCycle delta_cycles = 0;    ///< delta cycles spent in that cycle
  DeltaCycle limit = 0;           ///< the configured budget that was hit
  std::size_t num_blocks = 0;
  std::size_t link_changes = 0;   ///< changed link writes in that cycle
  /// Blocks still marked unstable when the budget ran out — the
  /// oscillating set (or its downstream cone).
  std::vector<BlockId> oscillating_blocks;
  /// Most recently changed links, newest first (bounded history).
  std::vector<LinkId> last_changed_links;

  std::string summary() const;
};

/// Thrown by the dynamic schedule instead of a bare Error; carries the
/// ConvergenceReport for the host to query.
class ConvergenceError : public ContextualError {
 public:
  explicit ConvergenceError(ConvergenceReport report);

  const ConvergenceReport& report() const { return report_; }

 private:
  ConvergenceReport report_;
};

/// Per-system-cycle accounting (the data behind §6's delta-cycle numbers).
struct StepStats {
  /// Block evaluations performed (== delta cycles).
  DeltaCycle delta_cycles = 0;
  /// delta_cycles minus the blocks evaluated at least once this cycle:
  /// the §4.2 re-evaluation overhead. For the round-robin scheduler the
  /// subtrahend is num_blocks; the worklist scheduler's quiescence fast
  /// path can evaluate fewer (see skipped_blocks).
  DeltaCycle re_evaluations = 0;
  /// Blocks the worklist scheduler's quiescence fast path did not
  /// evaluate at all this cycle (0 under round-robin).
  std::uint64_t skipped_blocks = 0;
  /// Deepest worklist occupancy seen this cycle (0 under round-robin).
  std::uint64_t worklist_high_water = 0;
  /// Combinational link writes whose value differed from memory.
  std::size_t link_changes = 0;
  /// Settle/exchange rounds the cycle took: 1 for the sequential
  /// schedules (one fixed-point search), the superstep count for the
  /// sharded engine.
  std::uint64_t settle_rounds = 1;
  /// Cut-link mailbox publishes (sharded engine only).
  std::uint64_t cut_publishes = 0;
  /// Barrier spin-loop iterations summed over shards (sharded only) —
  /// the wait-skew signal Manticore-style instrumentation watches.
  std::uint64_t barrier_spins = 0;

  /// Whole-struct equality: what the checkpoint/restore stats-stream
  /// tests diff (barrier_spins is wall-clock noise on the sharded
  /// engine, so those tests compare the deterministic fields).
  friend bool operator==(const StepStats&, const StepStats&) = default;
};

class Engine;

/// Engine-side observability hooks (DESIGN.md §10). The default
/// implementation of every callback is a no-op, and engines guard each
/// notification behind a null pointer check, so an unobserved run does
/// no extra work and is bit-identical to one on a build without the obs
/// subsystem (tests/obs/obs_off_test.cpp).
///
/// Threading: on_cycle_commit / on_convergence_failure arrive on the
/// thread that called Engine::step(); on_superstep arrives on sharded
/// worker threads *concurrently* — implementations must synchronize.
class SimObserver {
 public:
  virtual ~SimObserver();

  /// A system cycle committed (bank swap done); `eng.link_value()` /
  /// `eng.block_state()` see the newly committed values.
  virtual void on_cycle_commit(const Engine& eng, const StepStats& stats) {
    (void)eng;
    (void)stats;
  }

  /// One sharded superstep (settle + exchange) finished on `shard`.
  /// `settle_ns` / `barrier_ns` split the superstep's wall time into
  /// useful evaluation and barrier wait.
  virtual void on_superstep(std::size_t shard, std::uint64_t superstep,
                            std::uint64_t settle_ns,
                            std::uint64_t barrier_ns) {
    (void)shard;
    (void)superstep;
    (void)settle_ns;
    (void)barrier_ns;
  }

  /// The dynamic schedule is about to abandon the run; fires before the
  /// engine throws ConvergenceError, while link/state memories still
  /// hold the unsettled values (so a waveform ring can be flushed).
  virtual void on_convergence_failure(const Engine& eng,
                                      const ConvergenceReport& report) {
    (void)eng;
    (void)report;
  }
};

/// Point-in-time snapshot of an engine's committed architectural state
/// (DESIGN.md §11). Because every inter-block value of a combinational
/// model is recomputed from committed block state each cycle, the block
/// states plus the cycle counters are the *complete* resume state: an
/// engine restored from a checkpoint — any engine instance over the same
/// model, even one that just ran a different workload — continues
/// bit-identically. `digest` (FNV-1a over the serialized states) lets
/// the restore side verify integrity the same way the hardened host
/// verifies its commit-counter mirrors (§8).
/// Scheduler-canonical bookkeeping carried alongside the architectural
/// state (DESIGN.md §17). None of it can affect results — that is the
/// engine contract — but it does affect *StepStats*: the round-robin
/// cursor persists across cycles, and the worklist's quiescence flags
/// decide which blocks get skipped. A farm job preempted on one worker
/// and resumed on another must replay the same scheduling stats stream
/// it would have produced uninterrupted, so checkpoints carry this too.
/// Deliberately excluded from the checkpoint digest: it is not
/// architectural state.
///
/// The encoding is engine-agnostic: one cursor per shard (sequential
/// engines have one "shard") and the quiescence flags in model block
/// order. A restore into an engine whose shape does not match — or from
/// a default-constructed (empty) snapshot — canonicalizes instead:
/// cursors back to their seeded initial offsets, flags cleared. The
/// compiled scheduler has no entry here at all: a static schedule
/// carries zero dynamic scheduling state, which is what makes its
/// preemption trivially invisible.
struct SchedulerCheckpoint {
  std::vector<std::size_t> rr_cursors;  ///< one per shard
  std::vector<char> state_fixed;        ///< worklist flags, model order
  std::vector<char> pending_input;      ///< worklist flags, model order

  bool empty() const {
    return rr_cursors.empty() && state_fixed.empty() && pending_input.empty();
  }
};

struct EngineCheckpoint {
  SystemCycle cycle = 0;
  DeltaCycle total_delta_cycles = 0;
  std::vector<BitVector> block_states;  ///< one per block, model order
  std::uint64_t digest = 0;             ///< FNV-1a over the states
  SchedulerCheckpoint sched;            ///< stats-stream resume state
  /// Committed values of the internal combinational links (ids ascending,
  /// values parallel). Derived state — recomputable from block states by
  /// one settle — but carried so the worklist quiescence flags in `sched`
  /// stay sound after a restore: a skipped block does not rewrite its
  /// outputs, so the restored engine must already hold them. Guarded by
  /// its own digest; excluded from `digest`, which stays the pure
  /// architectural-state witness the differential harnesses compare.
  std::vector<LinkId> link_ids;
  std::vector<BitVector> link_values;
  std::uint64_t link_digest = 0;

  bool empty() const { return block_states.empty(); }
};

/// Abstract engine over a finalized SystemModel. All engines must agree
/// bit-for-bit on block state and link values after every step(); only
/// StepStats (how much work the schedule did) may differ.
class Engine {
 public:
  virtual ~Engine();

  /// Drives an external-input link (takes effect for the next step()).
  /// Throws ContextualError when the link is block-driven or when no
  /// block reads it (a silently ignored stimulus is always a test bug).
  virtual void set_external_input(LinkId link, const BitVector& value) = 0;

  /// Current reader-visible value of any link. For combinational links
  /// this is the value driven during the last step(); for registered
  /// links, the value committed at its clock edge.
  virtual const BitVector& link_value(LinkId link) const = 0;

  /// Old-bank (committed) state of a block.
  virtual const BitVector& block_state(BlockId block) const = 0;

  /// Overwrites a block's committed state (reset preloading, testing).
  virtual void load_block_state(BlockId block, const BitVector& value) = 0;

  /// Overwrites the reader-visible value of an internal combinational
  /// link (checkpoint restore). The default is a no-op, which is correct
  /// for engines that recompute every link from committed state each
  /// cycle; engines with cross-cycle fast paths that *reuse* link values
  /// (the worklist quiescence skip) must override so a restored snapshot
  /// is self-consistent.
  virtual void load_link_value(LinkId link, const BitVector& value) {
    (void)link;
    (void)value;
  }

  /// Simulates one system cycle.
  virtual StepStats step() = 0;

  virtual SystemCycle cycle() const = 0;
  virtual DeltaCycle total_delta_cycles() const = 0;
  virtual SchedulePolicy policy() const = 0;
  virtual const SystemModel& model() const = 0;

  /// Overwrites the cycle/delta accounting — the resume half of the
  /// checkpoint machinery (restore_checkpoint below). Only call between
  /// steps. Does not touch state or link memory.
  virtual void rebase(SystemCycle cycle, DeltaCycle total_deltas) = 0;

  /// Snapshot of the scheduler-canonical bookkeeping (cursor, quiescence
  /// flags) in the engine-agnostic SchedulerCheckpoint encoding. The
  /// default (an empty snapshot) is correct for engines with no dynamic
  /// scheduling state.
  virtual SchedulerCheckpoint scheduler_checkpoint() const { return {}; }

  /// Restores (or canonicalizes, for an empty/mismatched snapshot) the
  /// scheduler bookkeeping. Only call between steps. Never affects
  /// results — only the StepStats stream.
  virtual void restore_scheduler_state(const SchedulerCheckpoint& sched) {
    (void)sched;
  }

  /// Attaches an observer (nullptr detaches). Not owned; must outlive
  /// the engine or be detached first. Engines only touch it between
  /// steps, so attaching between step() calls is always safe.
  void set_observer(SimObserver* obs) { observer_ = obs; }
  SimObserver* observer() const { return observer_; }

 protected:
  SimObserver* observer_ = nullptr;
};

/// Builds the widths vector StateMemory needs from a model.
std::vector<std::size_t> block_state_widths(const SystemModel& model);

/// FNV-1a digest over every block's committed state — the cheap
/// bit-identity witness the farm's differential tests and checkpoint
/// verification both use.
std::uint64_t engine_state_digest(const Engine& eng);

/// Captures the committed state of `eng` between steps. Requires every
/// *internal* link of the model to be combinational (true of all NoC
/// models): registered internal links carry state this snapshot does not
/// include, so checkpointing such a model throws instead of silently
/// resuming wrong.
EngineCheckpoint save_checkpoint(const Engine& eng);

/// Loads `ck` into `eng` (same model shape required) and rebases the
/// cycle counters. Verifies the digest after the load and throws
/// ContextualError on mismatch. `eng` may be a different instance — or a
/// different Engine subclass — than the one that produced `ck`; external
/// inputs are NOT restored (drive them for the next cycle as usual).
void restore_checkpoint(Engine& eng, const EngineCheckpoint& ck);

/// Returns `eng` to its power-on state: every block reloaded with its
/// reset state, counters rebased to zero. This is what makes engine
/// instances reusable across farm jobs.
void reset_engine(Engine& eng);

/// Shared validation for Engine::set_external_input (the engines must
/// reject exactly the same misuses to stay substitutable).
void check_external_input(const SystemModel& model, LinkId link);

/// Degenerate-topology gate for the worklist scheduler, applied by both
/// engines at construction and re-checked (per shard) after
/// partitioning. Rejects, with a structured error instead of a hang at
/// the delta budget:
///  - combinational self-loop links (a block reading its own
///    combinational output), which the event-driven pickup would chase
///    in a tight requeue loop;
///  - external-input combinational links with an empty reader set: a
///    stimulus on such a link is an event that wakes nobody, so the
///    worklist would silently drop it (check_external_input catches the
///    drive; this catches the model).
/// No-op for kRoundRobin (the dense sweep tolerates both shapes, at
/// delta-budget cost).
void check_scheduler_topology(const SystemModel& model, SchedulerKind kind);

/// Initial round-robin cursor of a dynamic schedule for `schedule_seed`.
/// Seed 1 is canonical and maps to cursor 0 (the behaviour of every
/// paper figure); any other seed scatters the cursor via SplitMix so a
/// job-level seed perturbs the evaluation order — never the results.
std::size_t schedule_rr_offset(std::uint64_t schedule_seed,
                               std::size_t num_blocks);

}  // namespace tmsim::core
