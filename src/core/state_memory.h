// StateMemory: the double-banked register store of §4.1 / §5.2.
//
// "In the memory, both the old and new version of the register values are
//  stored [...] this copy action is performed by switching the offset
//  pointer of the current state and new state."
//
// One word per block per bank; the bank swap is a pointer flip, never a
// copy (even system cycles read bank 0 / write bank 1, odd cycles the
// reverse). Heterogeneous blocks store words of different widths; the
// word_width() accessor reports the widest word, which is what the FPGA
// implementation must provision (§7.1) and what the resource model uses.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bit_vector.h"
#include "common/error.h"

namespace tmsim::core {

class StateMemory {
 public:
  /// `widths[b]` is the register-file width of block b.
  explicit StateMemory(const std::vector<std::size_t>& widths);

  std::size_t num_blocks() const { return num_blocks_; }
  /// Widest word — the physical memory width the FPGA would provision.
  std::size_t word_width() const { return word_width_; }
  /// Total bits held (both banks).
  std::size_t total_bits() const;

  /// Current ("old") state of block b — what evaluations read.
  const BitVector& read_old(std::size_t block) const {
    return words_[old_offset_ + check_block(block)];
  }

  /// Next ("new") state slot of block b — what evaluations write.
  /// Re-evaluation overwrites the slot; the old bank is untouched, which
  /// is exactly why re-evaluation is safe ("the router's old state is
  /// available during the whole system cycle", §4.2).
  void write_new(std::size_t block, const BitVector& word) {
    BitVector& slot = words_[new_offset() + check_block(block)];
    TMSIM_CHECK_MSG(slot.width() == word.width(), "state word width mismatch");
    slot = word;
  }

  /// Copies block b's old-bank word into its new-bank slot — what the
  /// worklist scheduler's quiescence fast path does instead of a full
  /// evaluation, so the global bank swap cannot rot a skipped block's
  /// state. A word copy, far cheaper than any real block's evaluate().
  void carry_over(std::size_t block) {
    const std::size_t b = check_block(block);
    words_[new_offset() + b] = words_[old_offset_ + b];
  }

  /// Direct initialization of the old bank (reset / test preloading).
  void load_old(std::size_t block, const BitVector& word) {
    BitVector& slot = words_[old_offset_ + check_block(block)];
    TMSIM_CHECK_MSG(slot.width() == word.width(), "state word width mismatch");
    slot = word;
  }

  /// End of system cycle: flip the offset pointer. O(1), no data moves.
  void swap_banks() { old_offset_ = new_offset(); }

  /// Offset of the bank currently holding old state (0 or num_blocks) —
  /// exposed so tests can verify the pointer-swap mechanism.
  std::size_t old_offset() const { return old_offset_; }

 private:
  std::size_t new_offset() const {
    return old_offset_ == 0 ? num_blocks_ : 0;
  }
  std::size_t check_block(std::size_t block) const {
    TMSIM_CHECK_MSG(block < num_blocks_, "block index out of range");
    return block;
  }

  std::size_t num_blocks_ = 0;
  std::size_t word_width_ = 0;
  std::size_t old_offset_ = 0;
  std::vector<BitVector> words_;  // [2 * num_blocks]
};

}  // namespace tmsim::core
