#include "core/sequential_simulator.h"

#include <algorithm>
#include <string>
#include <utility>

namespace tmsim::core {

SequentialSimulator::SequentialSimulator(const SystemModel& model,
                                         SchedulePolicy policy,
                                         std::size_t max_evals_per_block,
                                         std::uint64_t schedule_seed)
    : model_(model),
      policy_(policy),
      max_evals_per_block_(max_evals_per_block),
      state_(block_state_widths(model)),
      links_(model),
      state_scratch_(0) {
  TMSIM_CHECK_MSG(model.finalized(), "model must be finalized");
  TMSIM_CHECK_MSG(max_evals_per_block >= 1, "eval limit must be positive");
  if (policy_ == SchedulePolicy::kStatic) {
    TMSIM_CHECK_MSG(model.all_boundaries_registered(),
                    "static schedule requires registered boundaries (§4.1); "
                    "use kDynamic for combinational boundaries");
  }
  for (BlockId b = 0; b < model.num_blocks(); ++b) {
    state_.load_old(b, model.block(b).logic->reset_state());
  }
  unstable_.assign(model.num_blocks(), 0);
  rr_next_ = schedule_rr_offset(schedule_seed, model.num_blocks());
}

void SequentialSimulator::rebase(SystemCycle cycle, DeltaCycle total_deltas) {
  cycle_ = cycle;
  total_delta_cycles_ = total_deltas;
}

void SequentialSimulator::set_external_input(LinkId link,
                                             const BitVector& value) {
  check_external_input(model_, link);
  links_.write(link, value);
}

const BitVector& SequentialSimulator::link_value(LinkId link) const {
  return links_.read(link);
}

const BitVector& SequentialSimulator::block_state(BlockId block) const {
  return state_.read_old(block);
}

void SequentialSimulator::load_block_state(BlockId block,
                                           const BitVector& value) {
  state_.load_old(block, value);
}

StepStats SequentialSimulator::step() {
  StepStats stats;
  switch (policy_) {
    case SchedulePolicy::kStatic:
      stats = step_static();
      break;
    case SchedulePolicy::kDynamic:
      stats = step_dynamic();
      break;
    case SchedulePolicy::kTwoPhaseOracle:
      stats = step_two_phase();
      break;
  }
  end_of_cycle();
  if (observer_) {
    observer_->on_cycle_commit(*this, stats);
  }
  return stats;
}

StepStats SequentialSimulator::step_static() {
  // §4.1: "The order in which the circuitry is evaluated to calculate new
  // register values can be arbitrary" — we use block index order.
  StepStats stats;
  for (BlockId b = 0; b < model_.num_blocks(); ++b) {
    evaluate_block(b, stats);
  }
  return stats;
}

StepStats SequentialSimulator::step_dynamic() {
  StepStats stats;
  const std::size_t n = model_.num_blocks();

  // "Every system cycle is started by resetting all status bits to zero.
  //  [...] it is guaranteed that all routers are evaluated at least once."
  links_.reset_all_hbr();
  std::fill(unstable_.begin(), unstable_.end(), 1);
  unstable_count_ = n;
  recent_changed_count_ = 0;

  const DeltaCycle limit = max_evals_per_block_ * n;
  while (unstable_count_ > 0) {
    // "A simple round-robin scheduler will decide which non-stable router
    //  has to be evaluated."
    while (unstable_[rr_next_] == 0) {
      rr_next_ = (rr_next_ + 1) % n;
    }
    const BlockId b = rr_next_;
    rr_next_ = (rr_next_ + 1) % n;
    unstable_[b] = 0;
    --unstable_count_;

    evaluate_block(b, stats);

    // Self-loop safety: if b drives one of its own inputs and changed it,
    // the write path has already destabilized b; this re-checks the HBR
    // bits directly so a bookkeeping bug cannot end a cycle early.
    if (unstable_[b] == 0 && !inputs_all_read(b)) {
      destabilize(b);
    }

    if (stats.delta_cycles > limit) {
      ConvergenceReport report = make_convergence_report(stats, limit);
      if (observer_) {
        observer_->on_convergence_failure(*this, report);
      }
      throw ConvergenceError(std::move(report));
    }
  }
  stats.re_evaluations = stats.delta_cycles - n;
  return stats;
}

StepStats SequentialSimulator::step_two_phase() {
  // Ablation schedule: two full passes. Correct only for designs whose
  // outputs depend on registered state alone (true for the case-study
  // router); pass 1 publishes all outputs, pass 2 recomputes every next
  // state with final link values.
  StepStats stats;
  links_.reset_all_hbr();
  for (int pass = 0; pass < 2; ++pass) {
    for (BlockId b = 0; b < model_.num_blocks(); ++b) {
      evaluate_block(b, stats);
    }
  }
  stats.re_evaluations = stats.delta_cycles - model_.num_blocks();
  return stats;
}

void SequentialSimulator::evaluate_block(BlockId b, StepStats& stats) {
  const BlockInstance& blk = model_.block(b);
  const SimBlock& logic = *blk.logic;
  const std::size_t n_in = logic.num_inputs();
  const std::size_t n_out = logic.num_outputs();

  if (in_scratch_.size() < n_in) {
    in_scratch_.resize(n_in, BitVector(0));
  }
  if (out_scratch_.size() < n_out) {
    out_scratch_.resize(n_out, BitVector(0));
  }

  // Latch the input link values this evaluation consumes, then set their
  // HBR bits: a later changed write to any of them must destabilize us.
  for (std::size_t p = 0; p < n_in; ++p) {
    const LinkId l = blk.input_links[p];
    in_scratch_[p] = links_.read(l);
    if (model_.link(l).kind == LinkKind::kCombinational) {
      links_.mark_read(l);
    }
  }

  if (state_scratch_.width() != logic.state_width()) {
    state_scratch_ = BitVector(logic.state_width());
  }
  for (std::size_t p = 0; p < n_out; ++p) {
    if (out_scratch_[p].width() != logic.output_width(p)) {
      out_scratch_[p] = BitVector(logic.output_width(p));
    }
  }

  logic.evaluate(state_.read_old(b),
                 std::span<const BitVector>(in_scratch_.data(), n_in),
                 state_scratch_,
                 std::span<BitVector>(out_scratch_.data(), n_out));

  state_.write_new(b, state_scratch_);

  for (std::size_t p = 0; p < n_out; ++p) {
    const LinkId l = blk.output_links[p];
    const bool changed = links_.write(l, out_scratch_[p]);
    if (changed) {
      // "if the router writes a value to a link, which is not equal to the
      //  current value in the memory, it will reset this link's status bit
      //  to zero" — destabilizing the reader.
      ++stats.link_changes;
      recent_changed_links_[recent_changed_count_++ % kChangedLinkHistory] = l;
      links_.clear_hbr(l);
      for (const Endpoint& reader : model_.link(l).readers) {
        destabilize(reader.block);
      }
    }
  }

  ++stats.delta_cycles;
  ++total_delta_cycles_;
  if (trace_) {
    trace_(cycle_, stats.delta_cycles - 1, b);
  }
}

ConvergenceReport SequentialSimulator::make_convergence_report(
    const StepStats& stats, DeltaCycle limit) const {
  ConvergenceReport r;
  r.cycle = cycle_;
  r.delta_cycles = stats.delta_cycles;
  r.limit = limit;
  r.num_blocks = model_.num_blocks();
  r.link_changes = stats.link_changes;
  for (BlockId b = 0; b < model_.num_blocks(); ++b) {
    if (unstable_[b]) {
      r.oscillating_blocks.push_back(b);
    }
  }
  // Newest first; the ring may not be full yet.
  const std::size_t have =
      std::min(recent_changed_count_, kChangedLinkHistory);
  for (std::size_t i = 0; i < have; ++i) {
    r.last_changed_links.push_back(
        recent_changed_links_[(recent_changed_count_ - 1 - i) %
                              kChangedLinkHistory]);
  }
  return r;
}

void SequentialSimulator::destabilize(BlockId b) {
  if (unstable_[b] == 0) {
    unstable_[b] = 1;
    ++unstable_count_;
  }
}

bool SequentialSimulator::inputs_all_read(BlockId b) const {
  const BlockInstance& blk = model_.block(b);
  for (const LinkId l : blk.input_links) {
    if (model_.link(l).kind == LinkKind::kCombinational &&
        !links_.has_been_read(l)) {
      return false;
    }
  }
  return true;
}

void SequentialSimulator::end_of_cycle() {
  state_.swap_banks();
  links_.swap_registered_banks();
  ++cycle_;
}

}  // namespace tmsim::core
