#include "core/sequential_simulator.h"

#include <algorithm>
#include <string>
#include <utility>

namespace tmsim::core {

SequentialSimulator::SequentialSimulator(const SystemModel& model,
                                         SchedulePolicy policy,
                                         std::size_t max_evals_per_block,
                                         std::uint64_t schedule_seed,
                                         SchedulerKind scheduler)
    : model_(model),
      policy_(policy),
      max_evals_per_block_(max_evals_per_block),
      scheduler_(scheduler),
      state_(block_state_widths(model)),
      links_(model),
      state_scratch_(0) {
  TMSIM_CHECK_MSG(model.finalized(), "model must be finalized");
  TMSIM_CHECK_MSG(max_evals_per_block >= 1, "eval limit must be positive");
  if (policy_ == SchedulePolicy::kStatic) {
    TMSIM_CHECK_MSG(model.all_boundaries_registered(),
                    "static schedule requires registered boundaries (§4.1); "
                    "use kDynamic for combinational boundaries");
  }
  check_scheduler_topology(model, scheduler_);
  for (BlockId b = 0; b < model.num_blocks(); ++b) {
    state_.load_old(b, model.block(b).logic->reset_state());
  }
  unstable_.assign(model.num_blocks(), 0);
  evaluated_.assign(model.num_blocks(), 0);
  rr_init_ = schedule_rr_offset(schedule_seed, model.num_blocks());
  rr_next_ = rr_init_;
  if (scheduler_ == SchedulerKind::kCompiled &&
      policy_ == SchedulePolicy::kDynamic) {
    // The whole point of kCompiled: pay for the schedule once, here.
    compiled_ = analysis::build_compiled_schedule(model);
  }
  if (scheduler_ == SchedulerKind::kWorklist) {
    worklist_.reserve(model.num_blocks());
    // A block is skippable only when every link it touches is
    // combinational: registered links are double-banked, so a skipped
    // write would leave a stale bank behind the pointer flip, and a
    // registered input changes under the reader without a change event.
    skippable_.assign(model.num_blocks(), 1);
    for (BlockId b = 0; b < model.num_blocks(); ++b) {
      const BlockInstance& blk = model.block(b);
      for (const LinkId l : blk.input_links) {
        if (model.link(l).kind != LinkKind::kCombinational) {
          skippable_[b] = 0;
        }
      }
      for (const LinkId l : blk.output_links) {
        if (model.link(l).kind != LinkKind::kCombinational) {
          skippable_[b] = 0;
        }
      }
    }
    state_fixed_.assign(model.num_blocks(), 0);
    pending_input_.assign(model.num_blocks(), 0);
  }
}

void SequentialSimulator::rebase(SystemCycle cycle, DeltaCycle total_deltas) {
  cycle_ = cycle;
  total_delta_cycles_ = total_deltas;
}

SchedulerCheckpoint SequentialSimulator::scheduler_checkpoint() const {
  SchedulerCheckpoint s;
  if (scheduler_ == SchedulerKind::kCompiled) {
    return s;  // a static schedule has no dynamic scheduling state
  }
  s.rr_cursors.push_back(rr_next_);
  if (scheduler_ == SchedulerKind::kWorklist) {
    s.state_fixed = state_fixed_;
    s.pending_input = pending_input_;
  }
  return s;
}

void SequentialSimulator::restore_scheduler_state(
    const SchedulerCheckpoint& sched) {
  const std::size_t n = model_.num_blocks();
  // Canonicalize on shape mismatch (cross-engine restore, empty
  // snapshot): cursor back to the seeded offset, flags conservative.
  rr_next_ = (sched.rr_cursors.size() == 1 && sched.rr_cursors[0] < n)
                 ? sched.rr_cursors[0]
                 : rr_init_;
  if (scheduler_ == SchedulerKind::kWorklist) {
    state_fixed_ = sched.state_fixed.size() == n ? sched.state_fixed
                                                 : std::vector<char>(n, 0);
    pending_input_ = sched.pending_input.size() == n
                         ? sched.pending_input
                         : std::vector<char>(n, 0);
  }
}

void SequentialSimulator::set_external_input(LinkId link,
                                             const BitVector& value) {
  check_external_input(model_, link);
  const bool changed = links_.write(link, value);
  if (changed && scheduler_ == SchedulerKind::kWorklist) {
    // Input activity: the quiescence fast path must not skip the
    // readers of a freshly driven stimulus next cycle.
    for (const Endpoint& reader : model_.link(link).readers) {
      pending_input_[reader.block] = 1;
    }
  }
}

const BitVector& SequentialSimulator::link_value(LinkId link) const {
  return links_.read(link);
}

const BitVector& SequentialSimulator::block_state(BlockId block) const {
  return state_.read_old(block);
}

void SequentialSimulator::load_block_state(BlockId block,
                                           const BitVector& value) {
  state_.load_old(block, value);
  if (scheduler_ == SchedulerKind::kWorklist && !state_fixed_.empty()) {
    // The committed state moved under the quiescence bookkeeping
    // (checkpoint restore, reset, test preloading): the block's last
    // evaluation no longer witnesses a fixed point. A full checkpoint
    // restore re-applies the flags afterwards, together with the link
    // snapshot that makes them sound again.
    state_fixed_[block] = 0;
  }
}

void SequentialSimulator::load_link_value(LinkId link, const BitVector& value) {
  TMSIM_CHECK_MSG(link < model_.num_links(), "link index out of range");
  links_.write(link, value);
}

StepStats SequentialSimulator::step() {
  StepStats stats;
  switch (policy_) {
    case SchedulePolicy::kStatic:
      stats = step_static();
      break;
    case SchedulePolicy::kDynamic:
      stats = scheduler_ == SchedulerKind::kWorklist ? step_dynamic_worklist()
              : scheduler_ == SchedulerKind::kCompiled ? step_compiled()
                                                       : step_dynamic();
      break;
    case SchedulePolicy::kTwoPhaseOracle:
      stats = step_two_phase();
      break;
  }
  end_of_cycle();
  if (observer_) {
    observer_->on_cycle_commit(*this, stats);
  }
  return stats;
}

void SequentialSimulator::begin_eval_accounting() {
  std::fill(evaluated_.begin(), evaluated_.end(), 0);
  first_evals_ = 0;
}

void SequentialSimulator::note_first_eval(BlockId b) {
  if (!evaluated_[b]) {
    evaluated_[b] = 1;
    ++first_evals_;
  }
}

void SequentialSimulator::fail_convergence(const StepStats& stats,
                                           DeltaCycle limit) {
  ConvergenceReport report = make_convergence_report(stats, limit);
  if (observer_) {
    observer_->on_convergence_failure(*this, report);
  }
  throw ConvergenceError(std::move(report));
}

StepStats SequentialSimulator::step_static() {
  // §4.1: "The order in which the circuitry is evaluated to calculate new
  // register values can be arbitrary" — we use block index order.
  StepStats stats;
  begin_eval_accounting();
  for (BlockId b = 0; b < model_.num_blocks(); ++b) {
    evaluate_block(b, stats);
  }
  stats.re_evaluations = stats.delta_cycles - first_evals_;
  return stats;
}

StepStats SequentialSimulator::step_dynamic() {
  StepStats stats;
  const std::size_t n = model_.num_blocks();

  // "Every system cycle is started by resetting all status bits to zero.
  //  [...] it is guaranteed that all routers are evaluated at least once."
  links_.reset_all_hbr();
  std::fill(unstable_.begin(), unstable_.end(), 1);
  unstable_count_ = n;
  recent_changed_count_ = 0;
  begin_eval_accounting();

  const DeltaCycle limit = max_evals_per_block_ * n;
  while (unstable_count_ > 0) {
    // "A simple round-robin scheduler will decide which non-stable router
    //  has to be evaluated." The scan is bounded at one full lap: if the
    //  count says work remains but a lap over the bitmap finds no flagged
    //  block, the two have desynced (a hostile block mutated engine
    //  bookkeeping, memory corruption, ...) and spinning forever would
    //  hide it — fail with the structured report instead.
    std::size_t scanned = 0;
    while (unstable_[rr_next_] == 0) {
      rr_next_ = (rr_next_ + 1) % n;
      if (++scanned > n) {
        fail_convergence(stats, limit);
      }
    }
    const BlockId b = rr_next_;
    rr_next_ = (rr_next_ + 1) % n;
    unstable_[b] = 0;
    --unstable_count_;

    evaluate_block(b, stats);

    // Self-loop safety: if b drives one of its own inputs and changed it,
    // the write path has already destabilized b; this re-checks the HBR
    // bits directly so a bookkeeping bug cannot end a cycle early.
    if (unstable_[b] == 0 && !inputs_all_read(b)) {
      destabilize(b);
    }

    if (stats.delta_cycles > limit) {
      fail_convergence(stats, limit);
    }
  }
  stats.re_evaluations = stats.delta_cycles - first_evals_;
  return stats;
}

StepStats SequentialSimulator::step_dynamic_worklist() {
  StepStats stats;
  const std::size_t n = model_.num_blocks();

  links_.reset_all_hbr();
  recent_changed_count_ = 0;
  begin_eval_accounting();
  worklist_.clear();
  wl_head_ = 0;

  // Quiescence fast path: a block whose last committed evaluation was a
  // state fixed point (new == old) and whose inputs have not changed
  // since would reproduce last cycle's outputs and state bit-for-bit —
  // re-running it is pure §4.2 overhead, so it is not queued at all.
  // Its committed state is carried across the bank swap instead.
  // Everything else seeds the worklist in block order, which makes the
  // first sweep identical to the round-robin scheduler's first sweep at
  // the canonical cursor.
  for (BlockId b = 0; b < n; ++b) {
    if (skippable_[b] && state_fixed_[b] && !pending_input_[b]) {
      state_.carry_over(b);
      ++stats.skipped_blocks;
      unstable_[b] = 0;
    } else {
      unstable_[b] = 1;
      worklist_.push_back(b);
    }
  }
  unstable_count_ = worklist_.size();
  wl_high_water_ = worklist_.size();

  const DeltaCycle limit = max_evals_per_block_ * n;
  while (wl_head_ < worklist_.size()) {
    const BlockId b = worklist_[wl_head_++];
    unstable_[b] = 0;
    --unstable_count_;

    evaluate_block(b, stats);

    if (stats.delta_cycles > limit) {
      fail_convergence(stats, limit);
    }
  }
  stats.worklist_high_water = wl_high_water_;
  stats.re_evaluations = stats.delta_cycles - first_evals_;
  return stats;
}

StepStats SequentialSimulator::step_compiled() {
  // The op list is the whole scheduler: no HBR resets, no unstable
  // bitmap, no worklist. Acyclic regions evaluate in the precomputed
  // order exactly once (plus the planned early drives); true cycles
  // settle in their scoped SCC worklists.
  StepStats stats;
  recent_changed_count_ = 0;
  begin_eval_accounting();
  const analysis::CompiledSchedule& sched = *compiled_;
  for (const analysis::CompiledOp& op : sched.ops) {
    if (op.kind == analysis::CompiledOpKind::kSettle) {
      settle_scc(op.scc, stats);
    } else {
      evaluate_block_compiled(op.block, stats, nullptr);
    }
  }
  stats.re_evaluations = stats.delta_cycles - first_evals_;
  return stats;
}

void SequentialSimulator::settle_scc(std::uint32_t scc_index,
                                     StepStats& stats) {
  const analysis::CompiledScc& scc = compiled_->sccs[scc_index];
  const std::size_t m = scc.blocks.size();
  scc_unstable_.assign(m, 1);
  for (BlockId b : scc.blocks) {
    unstable_[b] = 1;  // mirrored for the convergence report
  }
  std::size_t remaining = m;
  std::size_t cursor = 0;
  // Same convergence contract as the dynamic schedulers, scoped to the
  // SCC: each member gets max_evals_per_block_ evaluations to settle.
  const DeltaCycle limit = max_evals_per_block_ * m;
  DeltaCycle spent = 0;
  SettleCtx ctx{&scc, scc_index + 1, &scc_unstable_, &remaining};
  while (remaining > 0) {
    std::size_t scanned = 0;
    while (scc_unstable_[cursor] == 0) {
      cursor = (cursor + 1) % m;
      if (++scanned > m) {
        fail_convergence(stats, limit);  // bitmap/count desync
      }
    }
    const std::size_t i = cursor;
    cursor = (cursor + 1) % m;
    scc_unstable_[i] = 0;
    unstable_[scc.blocks[i]] = 0;
    --remaining;
    evaluate_block_compiled(scc.blocks[i], stats, &ctx);
    if (++spent > limit) {
      fail_convergence(stats, limit);
    }
  }
}

StepStats SequentialSimulator::step_two_phase() {
  // Ablation schedule: two full passes. Correct only for designs whose
  // outputs depend on registered state alone (true for the case-study
  // router); pass 1 publishes all outputs, pass 2 recomputes every next
  // state with final link values.
  StepStats stats;
  links_.reset_all_hbr();
  begin_eval_accounting();
  for (int pass = 0; pass < 2; ++pass) {
    for (BlockId b = 0; b < model_.num_blocks(); ++b) {
      evaluate_block(b, stats);
    }
  }
  stats.re_evaluations = stats.delta_cycles - first_evals_;
  return stats;
}

void SequentialSimulator::evaluate_block(BlockId b, StepStats& stats) {
  const BlockInstance& blk = model_.block(b);
  const SimBlock& logic = *blk.logic;
  const std::size_t n_in = logic.num_inputs();
  const std::size_t n_out = logic.num_outputs();

  if (scheduler_ == SchedulerKind::kWorklist) {
    // This evaluation consumes the freshest input values; any later
    // change re-queues the block (and re-flags it) via destabilize.
    pending_input_[b] = 0;
  }

  if (in_scratch_.size() < n_in) {
    in_scratch_.resize(n_in, BitVector(0));
  }
  if (out_scratch_.size() < n_out) {
    out_scratch_.resize(n_out, BitVector(0));
  }

  // Latch the input link values this evaluation consumes, then set their
  // HBR bits: a later changed write to any of them must destabilize us.
  for (std::size_t p = 0; p < n_in; ++p) {
    const LinkId l = blk.input_links[p];
    in_scratch_[p] = links_.read(l);
    if (model_.link(l).kind == LinkKind::kCombinational) {
      links_.mark_read(l);
    }
  }

  if (state_scratch_.width() != logic.state_width()) {
    state_scratch_ = BitVector(logic.state_width());
  }
  for (std::size_t p = 0; p < n_out; ++p) {
    if (out_scratch_[p].width() != logic.output_width(p)) {
      out_scratch_[p] = BitVector(logic.output_width(p));
    }
  }

  logic.evaluate(state_.read_old(b),
                 std::span<const BitVector>(in_scratch_.data(), n_in),
                 state_scratch_,
                 std::span<BitVector>(out_scratch_.data(), n_out));

  if (scheduler_ == SchedulerKind::kWorklist) {
    // Fixed-point witness for the quiescence fast path. The last
    // evaluation of the cycle is the committed one, so the flag's final
    // value describes exactly the state the bank swap publishes.
    state_fixed_[b] = state_scratch_ == state_.read_old(b) ? 1 : 0;
  }
  state_.write_new(b, state_scratch_);

  for (std::size_t p = 0; p < n_out; ++p) {
    const LinkId l = blk.output_links[p];
    const bool changed = links_.write(l, out_scratch_[p]);
    if (changed) {
      // "if the router writes a value to a link, which is not equal to the
      //  current value in the memory, it will reset this link's status bit
      //  to zero" — destabilizing the reader.
      ++stats.link_changes;
      recent_changed_links_[recent_changed_count_++ % kChangedLinkHistory] = l;
      links_.clear_hbr(l);
      for (const Endpoint& reader : model_.link(l).readers) {
        destabilize(reader.block);
      }
    }
  }

  note_first_eval(b);
  ++stats.delta_cycles;
  ++total_delta_cycles_;
  if (trace_) {
    trace_(cycle_, stats.delta_cycles - 1, b);
  }
}

void SequentialSimulator::evaluate_block_compiled(BlockId b, StepStats& stats,
                                                  const SettleCtx* ctx) {
  // Lean twin of evaluate_block: no HBR marks, no destabilization, no
  // worklist — the compiled op order already guarantees every input a
  // committing evaluation consumes is final. Change detection on link
  // writes stays (it feeds link_changes and, during a settle, the SCC's
  // scoped destabilization).
  const BlockInstance& blk = model_.block(b);
  const SimBlock& logic = *blk.logic;
  const std::size_t n_in = logic.num_inputs();
  const std::size_t n_out = logic.num_outputs();

  if (in_scratch_.size() < n_in) {
    in_scratch_.resize(n_in, BitVector(0));
  }
  if (out_scratch_.size() < n_out) {
    out_scratch_.resize(n_out, BitVector(0));
  }
  for (std::size_t p = 0; p < n_in; ++p) {
    in_scratch_[p] = links_.read(blk.input_links[p]);
  }
  if (state_scratch_.width() != logic.state_width()) {
    state_scratch_ = BitVector(logic.state_width());
  }
  for (std::size_t p = 0; p < n_out; ++p) {
    if (out_scratch_[p].width() != logic.output_width(p)) {
      out_scratch_[p] = BitVector(logic.output_width(p));
    }
  }

  logic.evaluate(state_.read_old(b),
                 std::span<const BitVector>(in_scratch_.data(), n_in),
                 state_scratch_,
                 std::span<BitVector>(out_scratch_.data(), n_out));
  // A drive's state write is harmlessly overwritten by the later
  // committing evaluation; the last write wins in the new bank.
  state_.write_new(b, state_scratch_);

  for (std::size_t p = 0; p < n_out; ++p) {
    const LinkId l = blk.output_links[p];
    if (!links_.write(l, out_scratch_[p])) {
      continue;
    }
    ++stats.link_changes;
    recent_changed_links_[recent_changed_count_++ % kChangedLinkHistory] = l;
    if (ctx != nullptr && compiled_->scc_of_link[l] == ctx->scc_id) {
      // Scoped worklist: a changed SCC-internal link re-flags exactly
      // its (single) reader, which is itself an SCC member.
      const BlockId r = model_.link(l).readers.front().block;
      const auto it = std::lower_bound(ctx->scc->blocks.begin(),
                                       ctx->scc->blocks.end(), r);
      const std::size_t idx =
          static_cast<std::size_t>(it - ctx->scc->blocks.begin());
      if (!(*ctx->unstable)[idx]) {
        (*ctx->unstable)[idx] = 1;
        ++*ctx->remaining;
        unstable_[r] = 1;
      }
    }
  }

  note_first_eval(b);
  ++stats.delta_cycles;
  ++total_delta_cycles_;
  if (trace_) {
    trace_(cycle_, stats.delta_cycles - 1, b);
  }
}

ConvergenceReport SequentialSimulator::make_convergence_report(
    const StepStats& stats, DeltaCycle limit) const {
  ConvergenceReport r;
  r.cycle = cycle_;
  r.delta_cycles = stats.delta_cycles;
  r.limit = limit;
  r.num_blocks = model_.num_blocks();
  r.link_changes = stats.link_changes;
  for (BlockId b = 0; b < model_.num_blocks(); ++b) {
    if (unstable_[b]) {
      r.oscillating_blocks.push_back(b);
    }
  }
  // Newest first; the ring may not be full yet.
  const std::size_t have =
      std::min(recent_changed_count_, kChangedLinkHistory);
  for (std::size_t i = 0; i < have; ++i) {
    r.last_changed_links.push_back(
        recent_changed_links_[(recent_changed_count_ - 1 - i) %
                              kChangedLinkHistory]);
  }
  return r;
}

void SequentialSimulator::destabilize(BlockId b) {
  if (unstable_[b] == 0) {
    unstable_[b] = 1;
    ++unstable_count_;
    if (scheduler_ == SchedulerKind::kWorklist &&
        policy_ == SchedulePolicy::kDynamic) {
      // Dedup'd FIFO push: the flag guards against double-queueing, so
      // each pending event costs exactly one future evaluation. The
      // static/two-phase schedules never consume the FIFO, hence the
      // policy gate.
      worklist_.push_back(b);
      const std::uint64_t depth =
          static_cast<std::uint64_t>(worklist_.size() - wl_head_);
      wl_high_water_ = std::max(wl_high_water_, depth);
    }
  }
}

bool SequentialSimulator::inputs_all_read(BlockId b) const {
  const BlockInstance& blk = model_.block(b);
  for (const LinkId l : blk.input_links) {
    if (model_.link(l).kind == LinkKind::kCombinational &&
        !links_.has_been_read(l)) {
      return false;
    }
  }
  return true;
}

void SequentialSimulator::end_of_cycle() {
  state_.swap_banks();
  links_.swap_registered_banks();
  ++cycle_;
}

}  // namespace tmsim::core
