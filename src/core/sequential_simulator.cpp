#include "core/sequential_simulator.h"

#include <algorithm>
#include <string>
#include <utility>

namespace tmsim::core {

SequentialSimulator::SequentialSimulator(const SystemModel& model,
                                         SchedulePolicy policy,
                                         std::size_t max_evals_per_block,
                                         std::uint64_t schedule_seed,
                                         SchedulerKind scheduler)
    : model_(model),
      policy_(policy),
      max_evals_per_block_(max_evals_per_block),
      scheduler_(scheduler),
      state_(block_state_widths(model)),
      links_(model),
      state_scratch_(0) {
  TMSIM_CHECK_MSG(model.finalized(), "model must be finalized");
  TMSIM_CHECK_MSG(max_evals_per_block >= 1, "eval limit must be positive");
  if (policy_ == SchedulePolicy::kStatic) {
    TMSIM_CHECK_MSG(model.all_boundaries_registered(),
                    "static schedule requires registered boundaries (§4.1); "
                    "use kDynamic for combinational boundaries");
  }
  check_scheduler_topology(model, scheduler_);
  for (BlockId b = 0; b < model.num_blocks(); ++b) {
    state_.load_old(b, model.block(b).logic->reset_state());
  }
  unstable_.assign(model.num_blocks(), 0);
  rr_next_ = schedule_rr_offset(schedule_seed, model.num_blocks());
  if (scheduler_ == SchedulerKind::kWorklist) {
    worklist_.reserve(model.num_blocks());
    // A block is skippable only when every link it touches is
    // combinational: registered links are double-banked, so a skipped
    // write would leave a stale bank behind the pointer flip, and a
    // registered input changes under the reader without a change event.
    skippable_.assign(model.num_blocks(), 1);
    for (BlockId b = 0; b < model.num_blocks(); ++b) {
      const BlockInstance& blk = model.block(b);
      for (const LinkId l : blk.input_links) {
        if (model.link(l).kind != LinkKind::kCombinational) {
          skippable_[b] = 0;
        }
      }
      for (const LinkId l : blk.output_links) {
        if (model.link(l).kind != LinkKind::kCombinational) {
          skippable_[b] = 0;
        }
      }
    }
    state_fixed_.assign(model.num_blocks(), 0);
    pending_input_.assign(model.num_blocks(), 0);
  }
}

void SequentialSimulator::rebase(SystemCycle cycle, DeltaCycle total_deltas) {
  cycle_ = cycle;
  total_delta_cycles_ = total_deltas;
}

void SequentialSimulator::set_external_input(LinkId link,
                                             const BitVector& value) {
  check_external_input(model_, link);
  const bool changed = links_.write(link, value);
  if (changed && scheduler_ == SchedulerKind::kWorklist) {
    // Input activity: the quiescence fast path must not skip the
    // readers of a freshly driven stimulus next cycle.
    for (const Endpoint& reader : model_.link(link).readers) {
      pending_input_[reader.block] = 1;
    }
  }
}

const BitVector& SequentialSimulator::link_value(LinkId link) const {
  return links_.read(link);
}

const BitVector& SequentialSimulator::block_state(BlockId block) const {
  return state_.read_old(block);
}

void SequentialSimulator::load_block_state(BlockId block,
                                           const BitVector& value) {
  state_.load_old(block, value);
  if (scheduler_ == SchedulerKind::kWorklist && !state_fixed_.empty()) {
    // The committed state moved under the quiescence bookkeeping
    // (checkpoint restore, reset, test preloading): the block's last
    // evaluation no longer witnesses a fixed point.
    state_fixed_[block] = 0;
  }
}

StepStats SequentialSimulator::step() {
  StepStats stats;
  switch (policy_) {
    case SchedulePolicy::kStatic:
      stats = step_static();
      break;
    case SchedulePolicy::kDynamic:
      stats = scheduler_ == SchedulerKind::kWorklist ? step_dynamic_worklist()
                                                     : step_dynamic();
      break;
    case SchedulePolicy::kTwoPhaseOracle:
      stats = step_two_phase();
      break;
  }
  end_of_cycle();
  if (observer_) {
    observer_->on_cycle_commit(*this, stats);
  }
  return stats;
}

StepStats SequentialSimulator::step_static() {
  // §4.1: "The order in which the circuitry is evaluated to calculate new
  // register values can be arbitrary" — we use block index order.
  StepStats stats;
  for (BlockId b = 0; b < model_.num_blocks(); ++b) {
    evaluate_block(b, stats);
  }
  return stats;
}

StepStats SequentialSimulator::step_dynamic() {
  StepStats stats;
  const std::size_t n = model_.num_blocks();

  // "Every system cycle is started by resetting all status bits to zero.
  //  [...] it is guaranteed that all routers are evaluated at least once."
  links_.reset_all_hbr();
  std::fill(unstable_.begin(), unstable_.end(), 1);
  unstable_count_ = n;
  recent_changed_count_ = 0;

  const DeltaCycle limit = max_evals_per_block_ * n;
  while (unstable_count_ > 0) {
    // "A simple round-robin scheduler will decide which non-stable router
    //  has to be evaluated."
    while (unstable_[rr_next_] == 0) {
      rr_next_ = (rr_next_ + 1) % n;
    }
    const BlockId b = rr_next_;
    rr_next_ = (rr_next_ + 1) % n;
    unstable_[b] = 0;
    --unstable_count_;

    evaluate_block(b, stats);

    // Self-loop safety: if b drives one of its own inputs and changed it,
    // the write path has already destabilized b; this re-checks the HBR
    // bits directly so a bookkeeping bug cannot end a cycle early.
    if (unstable_[b] == 0 && !inputs_all_read(b)) {
      destabilize(b);
    }

    if (stats.delta_cycles > limit) {
      ConvergenceReport report = make_convergence_report(stats, limit);
      if (observer_) {
        observer_->on_convergence_failure(*this, report);
      }
      throw ConvergenceError(std::move(report));
    }
  }
  stats.re_evaluations = stats.delta_cycles - n;
  return stats;
}

StepStats SequentialSimulator::step_dynamic_worklist() {
  StepStats stats;
  const std::size_t n = model_.num_blocks();

  links_.reset_all_hbr();
  recent_changed_count_ = 0;
  worklist_.clear();
  wl_head_ = 0;

  // Quiescence fast path: a block whose last committed evaluation was a
  // state fixed point (new == old) and whose inputs have not changed
  // since would reproduce last cycle's outputs and state bit-for-bit —
  // re-running it is pure §4.2 overhead, so it is not queued at all.
  // Its committed state is carried across the bank swap instead.
  // Everything else seeds the worklist in block order, which makes the
  // first sweep identical to the round-robin scheduler's first sweep at
  // the canonical cursor.
  for (BlockId b = 0; b < n; ++b) {
    if (skippable_[b] && state_fixed_[b] && !pending_input_[b]) {
      state_.carry_over(b);
      ++stats.skipped_blocks;
      unstable_[b] = 0;
    } else {
      unstable_[b] = 1;
      worklist_.push_back(b);
    }
  }
  unstable_count_ = worklist_.size();
  wl_high_water_ = worklist_.size();

  const DeltaCycle limit = max_evals_per_block_ * n;
  while (wl_head_ < worklist_.size()) {
    const BlockId b = worklist_[wl_head_++];
    unstable_[b] = 0;
    --unstable_count_;

    evaluate_block(b, stats);

    if (stats.delta_cycles > limit) {
      ConvergenceReport report = make_convergence_report(stats, limit);
      if (observer_) {
        observer_->on_convergence_failure(*this, report);
      }
      throw ConvergenceError(std::move(report));
    }
  }
  stats.worklist_high_water = wl_high_water_;
  stats.re_evaluations =
      stats.delta_cycles - (n - stats.skipped_blocks);
  return stats;
}

StepStats SequentialSimulator::step_two_phase() {
  // Ablation schedule: two full passes. Correct only for designs whose
  // outputs depend on registered state alone (true for the case-study
  // router); pass 1 publishes all outputs, pass 2 recomputes every next
  // state with final link values.
  StepStats stats;
  links_.reset_all_hbr();
  for (int pass = 0; pass < 2; ++pass) {
    for (BlockId b = 0; b < model_.num_blocks(); ++b) {
      evaluate_block(b, stats);
    }
  }
  stats.re_evaluations = stats.delta_cycles - model_.num_blocks();
  return stats;
}

void SequentialSimulator::evaluate_block(BlockId b, StepStats& stats) {
  const BlockInstance& blk = model_.block(b);
  const SimBlock& logic = *blk.logic;
  const std::size_t n_in = logic.num_inputs();
  const std::size_t n_out = logic.num_outputs();

  if (scheduler_ == SchedulerKind::kWorklist) {
    // This evaluation consumes the freshest input values; any later
    // change re-queues the block (and re-flags it) via destabilize.
    pending_input_[b] = 0;
  }

  if (in_scratch_.size() < n_in) {
    in_scratch_.resize(n_in, BitVector(0));
  }
  if (out_scratch_.size() < n_out) {
    out_scratch_.resize(n_out, BitVector(0));
  }

  // Latch the input link values this evaluation consumes, then set their
  // HBR bits: a later changed write to any of them must destabilize us.
  for (std::size_t p = 0; p < n_in; ++p) {
    const LinkId l = blk.input_links[p];
    in_scratch_[p] = links_.read(l);
    if (model_.link(l).kind == LinkKind::kCombinational) {
      links_.mark_read(l);
    }
  }

  if (state_scratch_.width() != logic.state_width()) {
    state_scratch_ = BitVector(logic.state_width());
  }
  for (std::size_t p = 0; p < n_out; ++p) {
    if (out_scratch_[p].width() != logic.output_width(p)) {
      out_scratch_[p] = BitVector(logic.output_width(p));
    }
  }

  logic.evaluate(state_.read_old(b),
                 std::span<const BitVector>(in_scratch_.data(), n_in),
                 state_scratch_,
                 std::span<BitVector>(out_scratch_.data(), n_out));

  if (scheduler_ == SchedulerKind::kWorklist) {
    // Fixed-point witness for the quiescence fast path. The last
    // evaluation of the cycle is the committed one, so the flag's final
    // value describes exactly the state the bank swap publishes.
    state_fixed_[b] = state_scratch_ == state_.read_old(b) ? 1 : 0;
  }
  state_.write_new(b, state_scratch_);

  for (std::size_t p = 0; p < n_out; ++p) {
    const LinkId l = blk.output_links[p];
    const bool changed = links_.write(l, out_scratch_[p]);
    if (changed) {
      // "if the router writes a value to a link, which is not equal to the
      //  current value in the memory, it will reset this link's status bit
      //  to zero" — destabilizing the reader.
      ++stats.link_changes;
      recent_changed_links_[recent_changed_count_++ % kChangedLinkHistory] = l;
      links_.clear_hbr(l);
      for (const Endpoint& reader : model_.link(l).readers) {
        destabilize(reader.block);
      }
    }
  }

  ++stats.delta_cycles;
  ++total_delta_cycles_;
  if (trace_) {
    trace_(cycle_, stats.delta_cycles - 1, b);
  }
}

ConvergenceReport SequentialSimulator::make_convergence_report(
    const StepStats& stats, DeltaCycle limit) const {
  ConvergenceReport r;
  r.cycle = cycle_;
  r.delta_cycles = stats.delta_cycles;
  r.limit = limit;
  r.num_blocks = model_.num_blocks();
  r.link_changes = stats.link_changes;
  for (BlockId b = 0; b < model_.num_blocks(); ++b) {
    if (unstable_[b]) {
      r.oscillating_blocks.push_back(b);
    }
  }
  // Newest first; the ring may not be full yet.
  const std::size_t have =
      std::min(recent_changed_count_, kChangedLinkHistory);
  for (std::size_t i = 0; i < have; ++i) {
    r.last_changed_links.push_back(
        recent_changed_links_[(recent_changed_count_ - 1 - i) %
                              kChangedLinkHistory]);
  }
  return r;
}

void SequentialSimulator::destabilize(BlockId b) {
  if (unstable_[b] == 0) {
    unstable_[b] = 1;
    ++unstable_count_;
    if (scheduler_ == SchedulerKind::kWorklist &&
        policy_ == SchedulePolicy::kDynamic) {
      // Dedup'd FIFO push: the flag guards against double-queueing, so
      // each pending event costs exactly one future evaluation. The
      // static/two-phase schedules never consume the FIFO, hence the
      // policy gate.
      worklist_.push_back(b);
      const std::uint64_t depth =
          static_cast<std::uint64_t>(worklist_.size() - wl_head_);
      wl_high_water_ = std::max(wl_high_water_, depth);
    }
  }
}

bool SequentialSimulator::inputs_all_read(BlockId b) const {
  const BlockInstance& blk = model_.block(b);
  for (const LinkId l : blk.input_links) {
    if (model_.link(l).kind == LinkKind::kCombinational &&
        !links_.has_been_read(l)) {
      return false;
    }
  }
  return true;
}

void SequentialSimulator::end_of_cycle() {
  state_.swap_banks();
  links_.swap_registered_banks();
  ++cycle_;
}

}  // namespace tmsim::core
