// TimingModel: converts counted events into wall-clock time on the
// paper's platform (§5.1/§6) — the documented substitution for the
// physical Virtex-II 8000 + ARM9 board we do not have.
//
// Clocks (from the paper):
//   - router logic synthesized at 6.6 MHz → delta cycle rate 3.3 MHz
//     (a delta cycle is 2 FPGA clock cycles, §5.2/§6);
//   - ARM / memory-interface frequency 86 MHz (§6).
//
// Software costs are per-event ARM-cycle constants, calibrated once so
// that the paper's representative workload lands inside the reported
// ranges (Table 3's 22 kHz average and Table 4's phase shares); they are
// then *held fixed* while the workload sweeps in the benches — the model
// must reproduce the fastest-case 61.6 kHz and the profile ranges from
// the counted events alone, not from further tuning.
//
// Overlap model (Fig. 8): all software phases time-share the single ARM;
// the FPGA simulation runs concurrently with them (the cyclic buffers
// decouple it), so wall time per period is max(ARM work, FPGA work) and
// the visible "Simulation" share is only the non-overlapped remainder —
// which is why Table 4 shows 0–2 % even though the raw FPGA time is not
// negligible.
#pragma once

#include <cstdint>

namespace tmsim::fpga {

struct ClockConfig {
  double fpga_logic_hz = 6.6e6;
  double arm_hz = 86.0e6;

  double delta_hz() const { return fpga_logic_hz / 2.0; }
};

/// ARM cycles per elementary software operation (calibration constants).
struct SoftwareCostModel {
  double per_generated_flit = 450;     ///< flit-ize + table bookkeeping
  double per_generated_packet = 900;   ///< routing lookup, header build
  double per_random_software = 380;    ///< C rand() (§5.3)
  double bus_cycles_per_read = 48;     ///< external memory interface read
  double bus_cycles_per_write = 48;    ///< external memory interface write
  double per_analyzed_flit = 60;
  double per_analyzed_packet = 700;
  double per_period_overhead = 3000;   ///< process scheduling, pointers
  /// Scales the analysis term: 1 = simple statistics, larger = the
  /// "complex simulations" of §6 with heavy result analysis.
  double analysis_complexity = 1.0;
};

/// Event counts from a run (ArmHost fills these per phase).
struct PhaseCounts {
  std::uint64_t flits_generated = 0;
  std::uint64_t packets_generated = 0;
  std::uint64_t randoms_drawn = 0;
  bool rng_on_fpga = true;
  std::uint64_t generate_bus_reads = 0;   ///< RNG reads land here
  std::uint64_t load_bus_reads = 0;       ///< free-space polls
  std::uint64_t load_bus_writes = 0;      ///< stimuli words
  std::uint64_t retrieve_bus_reads = 0;   ///< fill polls + output words
  // Hardening overhead (see DESIGN.md, "Robustness"), kept out of the
  // paper's phase buckets so Table 3/4 reproduction stays comparable:
  // read-backs, tag reads, acks and commit-count checks bill to verify;
  // run commands, status polls and clock read-outs bill to sync.
  std::uint64_t verify_bus_reads = 0;
  std::uint64_t verify_bus_writes = 0;
  std::uint64_t sync_bus_reads = 0;
  std::uint64_t sync_bus_writes = 0;
  std::uint64_t flits_analyzed = 0;
  std::uint64_t packets_analyzed = 0;
  std::uint64_t periods = 0;
  std::uint64_t system_cycles = 0;
  std::uint64_t fpga_clock_cycles = 0;
};

/// Wall-clock seconds per phase plus the headline rate.
struct PhaseTimes {
  double generate = 0;
  double load = 0;
  double simulate_raw = 0;      ///< FPGA busy time (before overlap)
  double retrieve = 0;
  double analyze = 0;
  double verify = 0;            ///< hardening overhead (verify + sync ops)
  double arm_total = 0;         ///< generate + load + retrieve + analyze
  double wall = 0;              ///< max(arm_total, simulate_raw) + overhead
  double simulate_visible = 0;  ///< non-overlapped FPGA remainder
  double cycles_per_second = 0; ///< Table 3's CPS

  /// Phase shares of wall time, as Table 4 reports them.
  double share_generate() const { return generate / wall; }
  double share_load() const { return load / wall; }
  double share_simulate() const { return simulate_visible / wall; }
  double share_retrieve() const { return retrieve / wall; }
  double share_analyze() const { return analyze / wall; }
  double share_verify() const { return verify / wall; }
};

/// First-order estimate of the sharded (parallel) engine's simulate
/// phase — what N copies of the §5.2 pipeline working on a partition of
/// the routers would do to the FPGA busy time.
struct ShardedEstimate {
  double simulate_raw = 0;      ///< estimated FPGA busy seconds
  double speedup = 1.0;         ///< sequential simulate_raw / sharded
  double cycles_per_second = 0; ///< headline rate with the overlap model
};

class TimingModel {
 public:
  TimingModel() = default;
  TimingModel(ClockConfig clocks, SoftwareCostModel costs)
      : clocks_(clocks), costs_(costs) {}

  const ClockConfig& clocks() const { return clocks_; }
  SoftwareCostModel& costs() { return costs_; }
  const SoftwareCostModel& costs() const { return costs_; }

  PhaseTimes evaluate(const PhaseCounts& c) const;

  /// Parallel-engine estimate: the critical shard executes
  /// ~fpga_clock_cycles / num_shards of the delta work, inflated by
  /// `imbalance` (partition skew), plus `sync_fpga_cycles` FPGA clock
  /// cycles per barrier round and `supersteps_per_cycle` rounds per
  /// system cycle. ARM-side phase costs are unchanged — they overlap the
  /// (now shorter) FPGA busy time exactly as in Fig. 8.
  ShardedEstimate sharded_simulate_estimate(
      const PhaseCounts& c, std::size_t num_shards, double imbalance = 1.1,
      double sync_fpga_cycles = 4.0, double supersteps_per_cycle = 2.0) const;

  /// The §6 theoretical ceiling: delta rate / minimum deltas per system
  /// cycle ("3.3e6/36 = 91.6 kHz for a 6-by-6 network").
  double max_simulation_hz(std::size_t num_routers) const {
    return clocks_.delta_hz() / static_cast<double>(num_routers);
  }

 private:
  ClockConfig clocks_;
  SoftwareCostModel costs_;
};

}  // namespace tmsim::fpga
