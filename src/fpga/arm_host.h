// ArmHost: the software side of the simulator (§5.3) — the five-phase
// loop the ARM9 runs, talking to the FPGA design exclusively through the
// memory-mapped interface:
//
//   1. generate traffic into a stimuli table (timestamps = intended
//      injection cycles; randomness from the FPGA RNG or C rand()),
//   2. load the stimuli into the per-VC cyclic buffers ("All input
//      buffers are maximally filled unless no data is available"),
//   3. run one simulation period (fixed to the stimuli buffer size, to
//      prevent underrun),
//   4. retrieve the output buffers (and the monitor buffers),
//   5. analyze: reassemble packets, match them to the sent table,
//      accumulate latency statistics.
//
// Unconsumed stimuli stay pending and are re-offered next period ("all
// unconsumed data will eventually be written into the FPGA"); if the
// network refuses a VC's traffic for many consecutive periods the run is
// flagged overloaded and stopped (§5.3).
//
// Every bus access and software operation is counted per phase; the
// TimingModel turns the counts into Table 3/Table 4 numbers.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "analysis/stats.h"
#include "common/rng.h"
#include "fpga/fpga_design.h"
#include "fpga/timing_model.h"
#include "traffic/harness.h"

namespace tmsim::fpga {

class ArmHost {
 public:
  struct Workload {
    double be_load = 0.0;
    std::vector<unsigned> be_vcs = {2, 3};
    std::size_t be_bytes = traffic::kBePacketBytes;
    std::vector<traffic::GtStream> gt_streams;
    /// §5.3 / §8: drawing randoms from the FPGA register vs C rand().
    bool rng_on_fpga = true;
    std::uint32_t rng_seed = 0x2bad5eedu;
    /// Consecutive periods a VC may refuse all traffic before the run is
    /// declared overloaded.
    std::size_t overload_periods = 50;
  };

  ArmHost(FpgaDesign& fpga, Workload workload);

  /// Writes the network geometry registers and commits the configuration.
  void configure_network(std::size_t width, std::size_t height,
                         noc::Topology topology);

  /// Runs simulation periods until at least `total_cycles` system cycles
  /// are simulated (or the network is overloaded).
  void run(std::size_t total_cycles);

  const PhaseCounts& counts() const { return counts_; }
  bool overloaded() const { return overloaded_; }

  /// Total latency (creation → tail delivery) per class.
  const analysis::StatAccumulator& latency(traffic::PacketClass cls) const {
    return latency_[static_cast<std::size_t>(cls)];
  }
  /// Access delay samples from the FPGA's monitor buffer (§5.2).
  const analysis::StatAccumulator& access_delay() const {
    return access_delay_;
  }
  std::uint64_t packets_delivered() const {
    return counts_.packets_analyzed;
  }

 private:
  struct SentRecord {
    traffic::PacketClass cls;
    SystemCycle created = 0;
    std::size_t flits = 0;
  };
  struct VcStream {  // per (router, vc)
    std::deque<TimedWord> pending;  // generated, not yet loaded
    std::size_t stalled_periods = 0;
    // Reassembly state on the receive side.
    bool receiving = false;
    std::uint32_t key = 0;
    std::size_t flits_seen = 0;
  };

  std::uint32_t next_random();
  double next_uniform();
  void generate_up_to(SystemCycle horizon);
  void emit_packet(traffic::PacketClass cls, std::size_t src, std::size_t dst,
                   unsigned vc, std::size_t payload_flits, SystemCycle when);
  void load_phase();
  void retrieve_phase();
  std::uint32_t flight_key(std::size_t dst, unsigned vc, unsigned seq) const;

  FpgaDesign& fpga_;
  Workload wl_;
  Lfsr32 sw_rng_;  ///< mirror of the FPGA LFSR (same seed ⇒ same traffic)
  PhaseCounts counts_;
  std::vector<VcStream> streams_;           // [router * num_vcs + vc]
  std::vector<SystemCycle> be_next_;        // next BE packet time per node
  std::unordered_map<std::uint32_t, SentRecord> sent_;
  std::vector<std::uint16_t> next_seq_;     // per (dst * num_vcs + vc)
  SystemCycle generated_horizon_ = 0;
  bool overloaded_ = false;
  analysis::StatAccumulator latency_[2];
  analysis::StatAccumulator access_delay_;
};

}  // namespace tmsim::fpga
