// ArmHost: the software side of the simulator (§5.3) — the five-phase
// loop the ARM9 runs, talking to the FPGA design exclusively through the
// memory-mapped interface:
//
//   1. generate traffic into a stimuli table (timestamps = intended
//      injection cycles; randomness from the FPGA RNG or C rand()),
//   2. load the stimuli into the per-VC cyclic buffers ("All input
//      buffers are maximally filled unless no data is available"),
//   3. run one simulation period (fixed to the stimuli buffer size, to
//      prevent underrun),
//   4. retrieve the output buffers (and the monitor buffers),
//   5. analyze: reassemble packets, match them to the sent table,
//      accumulate latency statistics.
//
// Unconsumed stimuli stay pending and are re-offered next period ("all
// unconsumed data will eventually be written into the FPGA"); if the
// network refuses a VC's traffic for many consecutive periods the run is
// flagged overloaded and stopped (§5.3).
//
// The host is hardened against transport faults on the bus (see
// DESIGN.md, "Robustness"): it talks through the BusInterface
// abstraction, verifies configuration writes by read-back, tags stimuli
// pushes and checks output words against hardware-computed tags,
// checkpoints the pending-stimuli queues so a corrupted load burst can
// be replayed from the accepted prefix, bounds every busy poll with a
// watchdog, and heals corrupted RNG reads from its software mirror. A
// bounded fault rate therefore yields statistics bit-identical to a
// fault-free run; unrecoverable states end in a graceful abort with a
// FaultReport instead of a crash or a hang.
//
// Every bus access and software operation is counted per phase; the
// TimingModel turns the counts into Table 3/Table 4 numbers.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/stats.h"
#include "common/rng.h"
#include "core/sequential_simulator.h"
#include "fpga/fault_report.h"
#include "fpga/fpga_design.h"
#include "fpga/timing_model.h"
#include "traffic/harness.h"

namespace tmsim::obs {
class ChromeTrace;
class MetricsRegistry;
}  // namespace tmsim::obs

namespace tmsim::fpga {

class ArmHost {
 public:
  struct Workload {
    double be_load = 0.0;
    std::vector<unsigned> be_vcs = {2, 3};
    std::size_t be_bytes = traffic::kBePacketBytes;
    std::vector<traffic::GtStream> gt_streams;
    /// §5.3 / §8: drawing randoms from the FPGA register vs C rand().
    bool rng_on_fpga = true;
    std::uint32_t rng_seed = 0x2bad5eedu;
    /// Consecutive periods a VC may refuse all traffic before the run is
    /// declared overloaded.
    std::size_t overload_periods = 50;
    /// Busy status polls tolerated per period before the watchdog trips.
    std::size_t watchdog_polls = 256;
    /// Bounded budget for every retry/replay loop in the host.
    std::size_t max_attempts = 8;
  };

  /// Hardened constructor: any bus stack (e.g. FaultyBus over
  /// FpgaDesign). The build configuration mirrors the synthesis
  /// parameters of the design at the bottom of the stack.
  ArmHost(BusInterface& bus, const FpgaBuildConfig& build, Workload workload);
  /// Convenience: drive a bare design directly.
  ArmHost(FpgaDesign& fpga, Workload workload);

  /// Writes the network geometry registers and commits the configuration,
  /// verifying every register by read-back. Throws on a bus that never
  /// converges within the retry budget.
  void configure_network(std::size_t width, std::size_t height,
                         noc::Topology topology);

  /// Runs simulation periods until at least `total_cycles` system cycles
  /// are simulated (or the network is overloaded, or the run aborts on an
  /// unrecoverable fault — see aborted()). Equivalent to
  /// run_incremental() followed by sync_hw_counters().
  void run(std::size_t total_cycles);

  /// run() without the trailing hardware-counter sync. Incremental
  /// drivers (the farm slicing a budget across preemptions) use this so
  /// the bus access sequence — and therefore any fault-injection stream
  /// keyed to it — is bit-identical however the budget is sliced; call
  /// sync_hw_counters() once when the whole budget is done.
  void run_incremental(std::size_t total_cycles);

  /// Reads back the hardware clock and fault counters (a handful of bus
  /// accesses). Part of every run(); incremental drivers call it once at
  /// end of job.
  void sync_hw_counters();

  /// Cooperative cancellation (DESIGN.md §13): when set, run() /
  /// run_incremental() consult the predicate before every simulation
  /// period and stop early when it returns true. The stop always lands
  /// on a period boundary — the same cut the farm's slicing-invariance
  /// contract already proves consistent — so a cancelled host can later
  /// be resumed (or finalized) without corrupting its mirrors. Pass an
  /// empty function to detach.
  void set_cancel_check(std::function<bool()> check) {
    cancel_check_ = std::move(check);
  }

  const PhaseCounts& counts() const { return counts_; }
  bool overloaded() const { return overloaded_; }

  /// True when run() stopped on an unrecoverable fault; the reason is in
  /// fault_report().abort_reason.
  bool aborted() const { return fault_report_.aborted; }
  const FaultReport& fault_report() const { return fault_report_; }
  /// Populated when the abort was a core convergence failure.
  const std::optional<core::ConvergenceReport>& convergence_report() const {
    return convergence_report_;
  }

  /// System cycles completed from the host's (verified) point of view.
  SystemCycle cycles_simulated() const { return cycles_; }

  /// Total latency (creation → tail delivery) per class.
  const analysis::StatAccumulator& latency(traffic::PacketClass cls) const {
    return latency_[static_cast<std::size_t>(cls)];
  }
  /// Access delay samples from the FPGA's monitor buffer (§5.2).
  const analysis::StatAccumulator& access_delay() const {
    return access_delay_;
  }
  std::uint64_t packets_delivered() const {
    return counts_.packets_analyzed;
  }

  /// Observability (DESIGN.md §10). set_timeline() attaches a
  /// Chrome-trace sink: run() then emits host.generate / host.load /
  /// host.simulate / host.retrieve wall-clock spans per period on tid 0,
  /// a synthetic host.analyze span (analysis runs inline during the
  /// drain; its time is accumulated and re-binned after retrieve), and
  /// instant events for fault episodes (load replays, ctrl retries,
  /// watchdog trips, spurious overruns). nullptr detaches.
  void set_timeline(obs::ChromeTrace* timeline) { timeline_ = timeline; }

  /// Publishes this run's PhaseCounts and FaultReport as `host.*`
  /// counters plus, via `timing`, the Table 3/4 phase seconds and
  /// shares as `host.phase.*_seconds` / `host.share.*` gauges — the
  /// registry-backed source bench/table4_profile reads.
  void export_metrics(obs::MetricsRegistry& registry,
                      const TimingModel& timing) const;

 private:
  struct SentRecord {
    traffic::PacketClass cls;
    SystemCycle created = 0;
    std::size_t flits = 0;
  };
  struct VcStream {  // per (router, vc)
    std::deque<TimedWord> pending;  // generated, not yet loaded
    std::size_t stalled_periods = 0;
    std::uint32_t commits = 0;  // mirror of the port's commit counter
    // Reassembly state on the receive side.
    bool receiving = false;
    std::uint32_t key = 0;
    std::size_t flits_seen = 0;
  };
  /// Which PhaseCounts bucket a bus access bills to. kVerify and kSync
  /// are the hardening overhead, kept out of the paper's phase buckets so
  /// Table 3/4 reproduction stays comparable to the seed.
  enum class Bucket { kGenerate, kLoad, kRetrieve, kVerify, kSync };

  std::uint32_t rd(Addr addr, Bucket b);
  void wr(Addr addr, std::uint32_t value, Bucket b);
  /// Reads until two consecutive reads agree (transient flips cannot
  /// produce the same wrong value twice in a row, in practice).
  std::uint32_t rd_agreed(Addr addr, Bucket b);
  /// Write + agreed read-back, retried within the attempt budget.
  void verified_write(Addr addr, std::uint32_t value, std::uint32_t expect);
  void abort_run(const std::string& reason);

  std::uint32_t next_random();
  double next_uniform();
  void generate_up_to(SystemCycle horizon);
  void emit_packet(traffic::PacketClass cls, std::size_t src, std::size_t dst,
                   unsigned vc, std::size_t payload_flits, SystemCycle when);
  void load_phase();
  bool load_port(std::size_t r, std::size_t vc);
  void simulate_phase(std::size_t period);
  void retrieve_phase();
  bool drain_port(Addr base, std::uint32_t& pops,
                  const std::function<void(std::uint32_t, std::uint32_t)>&
                      deliver);
  void deliver_output(std::size_t router, std::uint32_t ts,
                      std::uint32_t data);
  std::uint32_t flight_key(std::size_t dst, unsigned vc, unsigned seq) const;

  BusInterface& bus_;
  FpgaBuildConfig build_;
  Workload wl_;
  Lfsr32 sw_rng_;  ///< mirror of the FPGA LFSR (same seed ⇒ same traffic)
  noc::NetworkConfig net_;  ///< host-side mirror of the committed config
  bool configured_ = false;
  PhaseCounts counts_;
  std::vector<VcStream> streams_;           // [router * num_vcs + vc]
  std::vector<SystemCycle> be_next_;        // next BE packet time per node
  std::unordered_map<std::uint32_t, SentRecord> sent_;
  std::vector<std::uint16_t> next_seq_;     // per (dst * num_vcs + vc)
  std::vector<std::uint32_t> output_pops_;  // consumer-seq mirror per router
  std::uint32_t access_monitor_pops_ = 0;
  SystemCycle generated_horizon_ = 0;
  SystemCycle cycles_ = 0;                  // verified cycle-count mirror
  /// Period-size register mirror: 0 = not yet written. The register is
  /// written once per configuration, not once per run() call, so the bus
  /// access sequence is identical whether a budget is simulated in one
  /// run() or sliced into many (farm preemption relies on this).
  std::uint32_t sim_cycles_reg_ = 0;
  bool overloaded_ = false;
  FaultReport fault_report_;
  std::optional<core::ConvergenceReport> convergence_report_;
  analysis::StatAccumulator latency_[2];
  analysis::StatAccumulator access_delay_;

  // Observability (null = detached, zero overhead).
  obs::ChromeTrace* timeline_ = nullptr;
  double analyze_us_accum_ = 0.0;  ///< inline analyze time this period

  /// Cooperative cancellation predicate (empty = never cancelled).
  std::function<bool()> cancel_check_;
};

}  // namespace tmsim::fpga
