#include "fpga/timing_model.h"

#include <algorithm>

namespace tmsim::fpga {

PhaseTimes TimingModel::evaluate(const PhaseCounts& c) const {
  const double arm_s = 1.0 / clocks_.arm_hz;
  PhaseTimes t;

  // Generate: per-flit and per-packet software work plus randomness. With
  // the FPGA RNG the randoms cost one bus read each (already counted in
  // generate_bus_reads); with software rand() they cost ARM cycles.
  double gen_cycles =
      static_cast<double>(c.flits_generated) * costs_.per_generated_flit +
      static_cast<double>(c.packets_generated) * costs_.per_generated_packet +
      static_cast<double>(c.generate_bus_reads) * costs_.bus_cycles_per_read;
  if (!c.rng_on_fpga) {
    gen_cycles +=
        static_cast<double>(c.randoms_drawn) * costs_.per_random_software;
  }
  t.generate = gen_cycles * arm_s;

  t.load = (static_cast<double>(c.load_bus_writes) *
                costs_.bus_cycles_per_write +
            static_cast<double>(c.load_bus_reads) *
                costs_.bus_cycles_per_read) *
           arm_s;

  t.retrieve = static_cast<double>(c.retrieve_bus_reads) *
               costs_.bus_cycles_per_read * arm_s;

  t.analyze = (static_cast<double>(c.flits_analyzed) *
                   costs_.per_analyzed_flit +
               static_cast<double>(c.packets_analyzed) *
                   costs_.per_analyzed_packet) *
              costs_.analysis_complexity * arm_s;

  // Hardening overhead: every verify/sync bus access costs the same
  // external-memory-interface cycles as any other access; it rides on the
  // ARM alongside the paper's phases but is reported separately.
  t.verify = (static_cast<double>(c.verify_bus_reads + c.sync_bus_reads) *
                  costs_.bus_cycles_per_read +
              static_cast<double>(c.verify_bus_writes + c.sync_bus_writes) *
                  costs_.bus_cycles_per_write) *
             arm_s;

  t.simulate_raw =
      static_cast<double>(c.fpga_clock_cycles) / clocks_.fpga_logic_hz;

  const double overhead =
      static_cast<double>(c.periods) * costs_.per_period_overhead * arm_s;
  t.arm_total =
      t.generate + t.load + t.retrieve + t.analyze + t.verify + overhead;

  // Fig. 8 overlap: FPGA work hides behind ARM work (or vice versa).
  t.wall = std::max(t.arm_total, t.simulate_raw) +
           0.0;  // pipeline fill is inside per_period_overhead
  t.simulate_visible = std::max(0.0, t.simulate_raw - t.arm_total);
  t.cycles_per_second =
      t.wall > 0 ? static_cast<double>(c.system_cycles) / t.wall : 0.0;
  return t;
}

ShardedEstimate TimingModel::sharded_simulate_estimate(
    const PhaseCounts& c, std::size_t num_shards, double imbalance,
    double sync_fpga_cycles, double supersteps_per_cycle) const {
  ShardedEstimate e;
  const double seq_raw =
      static_cast<double>(c.fpga_clock_cycles) / clocks_.fpga_logic_hz;
  if (num_shards <= 1 || c.fpga_clock_cycles == 0) {
    e.simulate_raw = seq_raw;
    e.speedup = 1.0;
  } else {
    const double shard_cycles =
        static_cast<double>(c.fpga_clock_cycles) /
            static_cast<double>(num_shards) * imbalance +
        static_cast<double>(c.system_cycles) * supersteps_per_cycle *
            sync_fpga_cycles;
    e.simulate_raw = shard_cycles / clocks_.fpga_logic_hz;
    e.speedup = e.simulate_raw > 0 ? seq_raw / e.simulate_raw : 1.0;
  }
  // Re-run the Fig. 8 overlap with the shortened simulate phase: the ARM
  // phases are untouched, so the headline rate only improves while the
  // run is simulate-bound.
  PhaseTimes seq = evaluate(c);
  const double arm_total = seq.arm_total;
  const double wall = std::max(arm_total, e.simulate_raw);
  e.cycles_per_second =
      wall > 0 ? static_cast<double>(c.system_cycles) / wall : 0.0;
  return e;
}

}  // namespace tmsim::fpga
