// FpgaDesign: functional model of the Figure-7 FPGA design.
//
// The design couples the sequential NoC simulator (core engine with one
// router block per simulated router, dynamic HBR schedule) with:
//   - per-(router, VC) stimuli cyclic buffers (ARM writes, HW consumes),
//   - per-router output cyclic buffers (HW writes, ARM reads),
//   - a link-probe monitor buffer and an access-delay monitor buffer —
//     "These two buffers cannot influence the traffic in the NoC" (§5.2),
//     so they drop samples when full instead of stalling,
//   - the 32-bit hardware LFSR random number generator,
//   - global control/status registers,
// all reachable through read32/write32 on the 17-bit/32-bit memory
// interface (§5.1). Network size and topology are runtime-configurable
// through registers ("The software on the ARM can change the network size
// from 1-by-2 to any 2 dimensional size with a maximum number of 256
// routers", §7.1); queue depth and VC count are synthesis parameters.
//
// Timing accounting: a delta cycle costs 2 FPGA clock cycles (read,
// evaluate+write — §5.2), plus one cycle per system cycle for the HBR
// reset / scheduler turnaround. The counters feed the TimingModel.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/noc_block.h"
#include "fpga/address_map.h"
#include "fpga/bus_interface.h"
#include "fpga/cyclic_buffer.h"

namespace tmsim::obs {
class MetricsRegistry;
class Counter;
}  // namespace tmsim::obs

namespace tmsim::fpga {

/// Synthesis-time parameters of the FPGA design.
struct FpgaBuildConfig {
  /// Router microarchitecture baked into the bitstream.
  noc::RouterConfig router;
  /// Entries per (router, VC) stimuli buffer; the simulation period is
  /// tied to this size to prevent underrun (§5.3). The default is sized
  /// so a 256-router provisioning fits the XC2V8000's BlockRAM budget at
  /// the paper's ~82 % utilization (Table 2).
  std::size_t stimuli_buffer_depth = 16;
  /// Entries per router output buffer (must cover one period; outputs are
  /// at most one flit per router per cycle).
  std::size_t output_buffer_depth = 32;
  /// Entries in each monitor buffer.
  std::size_t monitor_buffer_depth = 64;
  /// Largest network the BRAM budget was provisioned for.
  std::size_t max_routers = 256;
  /// Simulation-engine shard count: 1 = the paper's sequential engine,
  /// > 1 = the sharded bulk-synchronous engine (bit-identical results;
  /// clamped to the router count).
  std::size_t num_shards = 1;
  /// Block-to-shard assignment policy when num_shards > 1.
  core::PartitionPolicy partition = core::PartitionPolicy::kMinCutGreedy;
  /// Dynamic-schedule seed forwarded to the engine (EngineOptions::seed).
  /// 1 is canonical; any other value perturbs only the evaluation order.
  std::uint64_t engine_seed = 1;
  /// Non-stable-block pickup strategy forwarded to the engine
  /// (EngineOptions::scheduler). Bit-identical results for every kind;
  /// part of the farm's engine cache key.
  core::SchedulerKind scheduler = core::SchedulerKind::kRoundRobin;
};

class FpgaDesign : public BusInterface {
 public:
  explicit FpgaDesign(const FpgaBuildConfig& build);
  ~FpgaDesign() override;

  /// Memory-mapped interface (the only way the ARM talks to the design).
  std::uint32_t read32(Addr addr) override;
  void write32(Addr addr, std::uint32_t value) override;

  const BusStats& bus_stats() const override { return bus_; }

  /// Convenience accessors used by tests and the timing model (these do
  /// not count as bus traffic).
  const FpgaBuildConfig& build() const { return build_; }
  bool configured() const { return sim_ != nullptr; }
  const noc::NetworkConfig& network() const;
  SystemCycle cycles_simulated() const { return cycles_simulated_; }
  DeltaCycle delta_cycles() const { return delta_cycles_; }
  std::uint64_t fpga_clock_cycles() const { return fpga_clock_cycles_; }
  std::uint64_t monitor_drops() const { return monitor_drops_; }
  bool output_overrun() const { return output_overrun_; }
  const core::SeqNocSimulation& simulation() const { return *sim_; }

  std::uint64_t stimuli_rejects() const { return stimuli_rejects_; }

  /// Observability (DESIGN.md §10). attach_metrics() registers the
  /// `fpga.*` counters (monitor-buffer samples/drops, stimuli rejects,
  /// cycle totals) and keeps them updated from step_one_cycle();
  /// nullptr detaches and restores the zero-overhead path.
  /// set_engine_observer() forwards a SimObserver to the underlying
  /// engine — effective immediately if configured, and re-applied on
  /// every (re)configure since kRegConfigure rebuilds the engine.
  void attach_metrics(obs::MetricsRegistry* registry);
  void set_engine_observer(core::SimObserver* observer);

 private:
  void configure();
  void run_period(std::size_t cycles);
  void step_one_cycle();
  std::uint32_t consumer_read(CyclicBuffer& buf, std::uint32_t& pops,
                              Addr sub);
  void consumer_ack(CyclicBuffer& buf, std::uint32_t& pops,
                    std::uint32_t value);

  FpgaBuildConfig build_;
  // Configuration registers (staged until kRegConfigure).
  std::uint32_t reg_width_ = 6;
  std::uint32_t reg_height_ = 6;
  std::uint32_t reg_topology_ = 0;
  std::uint32_t reg_sim_cycles_ = 0;
  std::uint32_t reg_link_probe_ = 0;
  std::uint32_t reg_guard_ = 0;
  std::uint32_t config_generation_ = 0;

  noc::NetworkConfig net_;
  std::unique_ptr<core::SeqNocSimulation> sim_;
  Lfsr32 rng_;
  BusStats bus_;

  // Buffers (sized at configure()).
  std::vector<CyclicBuffer> stimuli_;   // [router * num_vcs + vc]
  std::vector<CyclicBuffer> output_;    // [router]
  std::unique_ptr<CyclicBuffer> link_monitor_;
  std::unique_ptr<CyclicBuffer> access_monitor_;
  // Stimuli-interface state (counted in Table 1's 180 bits/router):
  std::vector<std::uint8_t> inject_credits_;  // [router * num_vcs + vc]
  std::vector<std::uint8_t> inject_rr_;       // [router]

  SystemCycle cycles_simulated_ = 0;
  DeltaCycle delta_cycles_ = 0;
  std::uint64_t fpga_clock_cycles_ = 0;
  std::uint64_t monitor_drops_ = 0;
  bool output_overrun_ = false;   // sticky; cleared by a W1C status write
  bool load_fault_ = false;       // sticky; set on a rejected guarded push
  std::uint64_t stimuli_rejects_ = 0;

  // Staged push: PUSH_TS latches, PUSH_DATA commits.
  std::vector<SystemCycle> staged_ts_;       // per stimuli port
  std::vector<std::uint8_t> staged_valid_;   // TS written since last DATA
  std::vector<std::uint32_t> stimuli_commits_;  // accepted words, cumulative

  // Consumer-side pop counters drive the TAG sequence numbers.
  std::vector<std::uint32_t> output_pops_;   // per router
  std::uint32_t link_monitor_pops_ = 0;
  std::uint32_t access_monitor_pops_ = 0;

  // Observability (null = detached; the hot path pays one branch).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_link_samples_ = nullptr;
  obs::Counter* m_link_drops_ = nullptr;
  obs::Counter* m_access_samples_ = nullptr;
  obs::Counter* m_access_drops_ = nullptr;
  obs::Counter* m_rejects_ = nullptr;
  obs::Counter* m_cycles_ = nullptr;
  obs::Counter* m_deltas_ = nullptr;
  obs::Counter* m_clk_ = nullptr;
  core::SimObserver* engine_observer_ = nullptr;
};

}  // namespace tmsim::fpga
