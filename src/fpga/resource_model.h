// ResourceModel: estimates Virtex-II 8000 resource usage for the
// simulator design (Table 2) and for a fully parallel NoC instantiation
// (§4's "approximately 24 routers" synthesis limit).
//
// What is computed vs what is calibrated:
//  - BlockRAM counts are *computed* from the bit-accurate state layout
//    and buffer geometry: a Virtex-II BlockRAM holds 18 kbit with a
//    maximum data width of 36 bits, so a memory of depth ≤ 512 needs
//    ceil(width/36) BRAMs. The router state memory (2 banks × 256 words)
//    and the cyclic buffers dominate — this reproduces the paper's
//    conclusion that BRAM, not logic, is the limit (82 %).
//  - Slice ("CLB" in the paper's loose usage: 46 592 slices on the
//    XC2V8000, 15 % ≈ 7 053) counts for combinational logic are synthesis
//    results we cannot re-run without the vendor tools; they are modeled
//    with per-primitive coefficients (LUTs per mux leg, per comparator
//    bit, per counter bit) *calibrated once* against Table 2 and then
//    applied unchanged to derived questions (parallel-instantiation
//    limit, other network sizes, ablations).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fpga/fpga_design.h"
#include "noc/router_state.h"

namespace tmsim::fpga {

/// XC2V8000 budgets.
struct FpgaBudget {
  std::size_t slices = 46592;
  std::size_t block_rams = 168;
  std::size_t tbufs = 23296;  ///< tri-state buffers (4 per CLB, half usable)
};

/// One Table 2 row.
struct ResourceUsage {
  std::string block;
  std::size_t slices = 0;
  std::size_t brams = 0;
};

struct ResourceReport {
  std::vector<ResourceUsage> rows;
  std::size_t total_slices = 0;
  std::size_t total_brams = 0;
  double slice_fraction = 0;
  double bram_fraction = 0;
};

class ResourceModel {
 public:
  explicit ResourceModel(FpgaBudget budget = FpgaBudget())
      : budget_(budget) {}

  const FpgaBudget& budget() const { return budget_; }

  /// Table 2: the time-multiplexed simulator provisioned for
  /// `max_routers` routers with the given build parameters.
  ResourceReport simulator_usage(const FpgaBuildConfig& build) const;

  /// §4: slices/tbufs of ONE fully parallel router instance (registers in
  /// flip-flops, crossbar in tri-state buffers) with a reduced datapath.
  ResourceUsage parallel_router(const noc::RouterConfig& router,
                                std::size_t datapath_bits) const;

  /// §4: how many fully parallel routers fit (the paper found ~24 with a
  /// 6-bit datapath, limited by CLBs and tri-states).
  std::size_t max_parallel_routers(const noc::RouterConfig& router,
                                   std::size_t datapath_bits) const;

  /// BRAMs for a memory of `depth` words × `width` bits (depth ≤ 512
  /// assumed per bank, which holds for every memory in this design).
  static std::size_t brams_for(std::size_t depth, std::size_t width);

 private:
  FpgaBudget budget_;
};

}  // namespace tmsim::fpga
