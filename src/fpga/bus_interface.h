// BusInterface: the ARM-side view of the 17-bit-address / 32-bit-data
// memory interface (§5.1). `FpgaDesign` implements it directly; fault
// layers (FaultyBus) wrap another BusInterface and perturb the traffic.
// The hardened ArmHost talks only to this interface, so the same host
// code drives a clean design, a faulty one, or any test double.
#pragma once

#include <cstdint>

#include "fpga/address_map.h"

namespace tmsim::fpga {

/// Bus traffic counters (for the interface-time model). A decorator
/// keeps its own counters, so the host always sees the traffic it
/// actually attempted — including writes a fault layer swallowed.
struct BusStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

class BusInterface {
 public:
  virtual ~BusInterface() = default;

  virtual std::uint32_t read32(Addr addr) = 0;
  virtual void write32(Addr addr, std::uint32_t value) = 0;

  /// Traffic as seen at this layer of the bus stack.
  virtual const BusStats& bus_stats() const = 0;
};

}  // namespace tmsim::fpga
