// Address map of the FPGA design on the 17-bit-address / 32-bit-data
// memory interface (§5.1): "All registers and memory of the FPGA design,
// via the memory interface, are available in the address map of the ARM9
// processor."
//
// Word-addressed. Layout:
//   0x00000..0x0005F  global control / status / configuration / RNG
//   0x00400 + 16r+4v  stimuli buffer port of router r, VC v
//   0x02000 + 8r      output buffer port of router r
//   0x03000           link monitor buffer port
//   0x03010           access-delay monitor buffer port
//
// Consumer ports carry, besides the legacy destructive pop, a
// peek/tag/ack protocol so a host that mistrusts the bus can re-read a
// corrupted word and acknowledge explicitly (see DESIGN.md,
// "Robustness"). Stimuli ports optionally (kRegGuard) validate a
// sequence+checksum tag folded into the unused high bits of the push
// word, rejecting corrupted entries instead of simulating them.
#pragma once

#include <bit>
#include <cstdint>

namespace tmsim::fpga {

using Addr = std::uint32_t;

/// 17-bit word address space.
inline constexpr Addr kAddrSpaceWords = 1u << 17;

// --- Global registers -----------------------------------------------------
inline constexpr Addr kRegCtrl = 0x00;        ///< W: 1 = run one period
inline constexpr Addr kRegStatus = 0x01;      ///< R: status bits; W: W1C
inline constexpr Addr kRegSimCycles = 0x02;   ///< R/W: system cycles/period
inline constexpr Addr kRegNetWidth = 0x03;    ///< R/W: network width
inline constexpr Addr kRegNetHeight = 0x04;   ///< R/W: network height
inline constexpr Addr kRegTopology = 0x05;    ///< R/W: 0 torus, 1 mesh
inline constexpr Addr kRegConfigure = 0x06;   ///< W: commit net configuration
inline constexpr Addr kRegRandom = 0x07;      ///< R: next 32-bit LFSR word
inline constexpr Addr kRegCycleLo = 0x08;     ///< R: simulated cycles (lo)
inline constexpr Addr kRegCycleHi = 0x09;     ///< R: simulated cycles (hi)
inline constexpr Addr kRegDeltaLo = 0x0a;     ///< R: delta cycles (lo)
inline constexpr Addr kRegDeltaHi = 0x0b;     ///< R: delta cycles (hi)
inline constexpr Addr kRegFpgaClkLo = 0x0c;   ///< R: FPGA clock cycles (lo)
inline constexpr Addr kRegFpgaClkHi = 0x0d;   ///< R: FPGA clock cycles (hi)
inline constexpr Addr kRegLinkProbe = 0x0e;   ///< R/W: (router<<8)|port to log
inline constexpr Addr kRegRngSeed = 0x0f;     ///< W: reseed; R: LFSR state
inline constexpr Addr kRegConfigGen = 0x10;   ///< R: committed config count
inline constexpr Addr kRegGuard = 0x11;       ///< R/W: bit0 = guarded pushes
inline constexpr Addr kRegFaults = 0x12;      ///< R: rejected stimuli words

// kRegStatus bits. Sticky bits stay set until the host clears them by
// writing a mask with that bit (write-one-to-clear), so one recovered
// fault cannot poison every later period's status poll.
inline constexpr std::uint32_t kStatusBusy = 1u << 0;
inline constexpr std::uint32_t kStatusOverrun = 1u << 1;    ///< sticky, W1C
inline constexpr std::uint32_t kStatusLoadFault = 1u << 2;  ///< sticky, W1C

// --- Per-buffer port sub-registers -----------------------------------------
// Stimuli ports (ARM = producer): FREE/COMMITS are reads, PUSH_* writes.
// Output/monitor ports (ARM = consumer): FILL/POP_*/PEEK/TAG are reads,
// ACK is a write.
inline constexpr Addr kPortFree = 0;      ///< R: free entries
inline constexpr Addr kPortPushTs = 1;    ///< W: entry timestamp
inline constexpr Addr kPortPushData = 2;  ///< W: entry payload (commits)
inline constexpr Addr kPortCommits = 3;   ///< R: words committed (cumulative)
inline constexpr Addr kPortFill = 0;      ///< R: filled entries
inline constexpr Addr kPortPopTs = 1;     ///< R: front timestamp (peek)
inline constexpr Addr kPortPopData = 2;   ///< R: front payload (pops entry)
inline constexpr Addr kPortPeekData = 3;  ///< R: front payload (no pop)
inline constexpr Addr kPortTag = 4;       ///< R: front entry tag (0 if empty)
inline constexpr Addr kPortAck = 5;       ///< W: pop if value matches seq

inline constexpr Addr kStimuliBase = 0x00400;
inline constexpr Addr kOutputBase = 0x02000;
inline constexpr Addr kLinkMonitorBase = 0x03000;
inline constexpr Addr kAccessMonitorBase = 0x03010;

/// Stimuli buffer port of (router, vc).
inline Addr stimuli_port(std::size_t router, std::size_t vc, Addr sub) {
  return kStimuliBase + static_cast<Addr>(router * 16 + vc * 4) + sub;
}

/// Output buffer port of router r (outputs are stored per router, not per
/// VC — §5.2). Eight words per router to fit the peek/tag/ack ports.
inline Addr output_port(std::size_t router, Addr sub) {
  return kOutputBase + static_cast<Addr>(router * 8) + sub;
}

// --- Word tagging (corruption detection) -----------------------------------
// A 2-bit checksum over (payload XOR low timestamp bits), offset by one so
// that an all-zero word (what an empty buffer's peek ports return) never
// validates against any tag.
inline std::uint32_t word_checksum(std::uint32_t data, std::uint32_t ts) {
  return (static_cast<std::uint32_t>(std::popcount(data ^ ts)) + 1u) & 3u;
}

/// Consumer-port TAG word: bit8 = valid, bits[7:6] = checksum,
/// bits[5:0] = sequence number (pop count mod 64) of the front entry.
inline constexpr std::uint32_t kTagValidBit = 1u << 8;
inline std::uint32_t entry_tag(std::uint32_t data, std::uint32_t ts,
                               std::uint32_t seq) {
  return kTagValidBit | (word_checksum(data, ts) << 6) | (seq & 63u);
}

/// Guarded stimuli push word: the flit encoding occupies bits[20:0]; the
/// free high bits carry bits[26:21] = sequence (commit count mod 64) and
/// bits[28:27] = checksum over (payload, timestamp). With kRegGuard off
/// the high bits are simply not connected, as before.
inline constexpr std::uint32_t kStimuliPayloadBits = 21;
inline constexpr std::uint32_t kStimuliPayloadMask =
    (1u << kStimuliPayloadBits) - 1u;
inline std::uint32_t guard_stimulus(std::uint32_t payload, std::uint32_t ts,
                                    std::uint32_t seq) {
  payload &= kStimuliPayloadMask;
  return payload | ((seq & 63u) << kStimuliPayloadBits) |
         (word_checksum(payload, ts) << 27);
}

}  // namespace tmsim::fpga
