// Address map of the FPGA design on the 17-bit-address / 32-bit-data
// memory interface (§5.1): "All registers and memory of the FPGA design,
// via the memory interface, are available in the address map of the ARM9
// processor."
//
// Word-addressed. Layout:
//   0x00000..0x0005F  global control / status / configuration / RNG
//   0x00400 + 16r+4v  stimuli buffer port of router r, VC v
//   0x02000 + 4r      output buffer port of router r
//   0x03000           link monitor buffer port
//   0x03010           access-delay monitor buffer port
#pragma once

#include <cstdint>

namespace tmsim::fpga {

using Addr = std::uint32_t;

/// 17-bit word address space.
inline constexpr Addr kAddrSpaceWords = 1u << 17;

// --- Global registers -----------------------------------------------------
inline constexpr Addr kRegCtrl = 0x00;        ///< W: 1 = run one period
inline constexpr Addr kRegStatus = 0x01;      ///< R: bit0 busy, bit1 overrun
inline constexpr Addr kRegSimCycles = 0x02;   ///< W: system cycles per period
inline constexpr Addr kRegNetWidth = 0x03;    ///< W: network width
inline constexpr Addr kRegNetHeight = 0x04;   ///< W: network height
inline constexpr Addr kRegTopology = 0x05;    ///< W: 0 torus, 1 mesh
inline constexpr Addr kRegConfigure = 0x06;   ///< W: commit net configuration
inline constexpr Addr kRegRandom = 0x07;      ///< R: next 32-bit LFSR word
inline constexpr Addr kRegCycleLo = 0x08;     ///< R: simulated cycles (lo)
inline constexpr Addr kRegCycleHi = 0x09;     ///< R: simulated cycles (hi)
inline constexpr Addr kRegDeltaLo = 0x0a;     ///< R: delta cycles (lo)
inline constexpr Addr kRegDeltaHi = 0x0b;     ///< R: delta cycles (hi)
inline constexpr Addr kRegFpgaClkLo = 0x0c;   ///< R: FPGA clock cycles (lo)
inline constexpr Addr kRegFpgaClkHi = 0x0d;   ///< R: FPGA clock cycles (hi)
inline constexpr Addr kRegLinkProbe = 0x0e;   ///< W: (router<<8)|port to log
inline constexpr Addr kRegRngSeed = 0x0f;     ///< W: reseed the LFSR

// --- Per-buffer port sub-registers -----------------------------------------
// Stimuli ports (ARM = producer): FREE is a read, PUSH_* are writes.
// Output/monitor ports (ARM = consumer): FILL / POP_* are reads.
inline constexpr Addr kPortFree = 0;     ///< R: free entries
inline constexpr Addr kPortPushTs = 1;   ///< W: entry timestamp
inline constexpr Addr kPortPushData = 2; ///< W: entry payload (commits entry)
inline constexpr Addr kPortFill = 0;     ///< R: filled entries
inline constexpr Addr kPortPopTs = 1;    ///< R: front timestamp
inline constexpr Addr kPortPopData = 2;  ///< R: front payload (pops entry)

inline constexpr Addr kStimuliBase = 0x00400;
inline constexpr Addr kOutputBase = 0x02000;
inline constexpr Addr kLinkMonitorBase = 0x03000;
inline constexpr Addr kAccessMonitorBase = 0x03010;

/// Stimuli buffer port of (router, vc).
inline Addr stimuli_port(std::size_t router, std::size_t vc, Addr sub) {
  return kStimuliBase + static_cast<Addr>(router * 16 + vc * 4) + sub;
}

/// Output buffer port of router r (outputs are stored per router, not per
/// VC — §5.2).
inline Addr output_port(std::size_t router, Addr sub) {
  return kOutputBase + static_cast<Addr>(router * 4) + sub;
}

}  // namespace tmsim::fpga
