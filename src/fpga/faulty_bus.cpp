#include "fpga/faulty_bus.h"

namespace tmsim::fpga {

FaultyBus::FaultyBus(BusInterface& inner, FaultRates rates,
                     std::uint64_t seed)
    : inner_(inner), rates_(rates), rng_(seed) {}

bool FaultyBus::roll(double rate) {
  if (rate <= 0.0) {
    return false;
  }
  return rng_.next_double() < rate;
}

std::uint32_t FaultyBus::read32(Addr addr) {
  ++stats_.reads;
  std::uint32_t value = inner_.read32(addr);
  if (addr == kRegStatus) {
    if (busy_reads_left_ > 0) {
      --busy_reads_left_;
      ++counts_.stuck_busy_reads;
      value |= kStatusBusy;
    } else if (roll(rates_.stuck_busy)) {
      ++counts_.stuck_busy_bursts;
      ++counts_.stuck_busy_reads;
      busy_reads_left_ =
          rates_.stuck_busy_reads > 0 ? rates_.stuck_busy_reads - 1 : 0;
      value |= kStatusBusy;
    }
    if (roll(rates_.spurious_overrun)) {
      ++counts_.spurious_overruns;
      value |= kStatusOverrun;
    }
  }
  if (roll(rates_.read_flip)) {
    ++counts_.read_flips;
    value ^= 1u << rng_.next_below(32);
  }
  return value;
}

void FaultyBus::write32(Addr addr, std::uint32_t value) {
  ++stats_.writes;
  if (roll(rates_.dropped_write)) {
    ++counts_.dropped_writes;
    return;
  }
  if (roll(rates_.write_flip)) {
    ++counts_.write_flips;
    value ^= 1u << rng_.next_below(32);
  }
  inner_.write32(addr, value);
}

}  // namespace tmsim::fpga
