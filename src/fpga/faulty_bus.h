// FaultyBus: deterministic fault injection on the ARM↔FPGA memory
// interface. Wraps any BusInterface and perturbs traffic according to
// per-fault-class rates, driven by a seeded generator so every run is
// reproducible. The fault classes model the transport errors a real
// external memory interface can exhibit:
//
//   - read bit-flips:       a returned word with one bit inverted,
//   - write bit-flips:      a stored word with one bit inverted,
//   - dropped writes:       the write never reaches the design,
//   - transient stuck-busy: the status register reads busy for a burst
//                           of consecutive polls,
//   - spurious overrun:     the status overrun bit reads set once.
//
// The decorator keeps its own BusStats (attempted traffic, including
// dropped writes) and per-class injection counters, so tests and the
// fault-sweep bench can correlate injected faults with the host's
// recovery actions.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "fpga/bus_interface.h"

namespace tmsim::fpga {

/// Per-access probabilities for each fault class.
struct FaultRates {
  double read_flip = 0.0;        ///< per read: flip one bit of the result
  double write_flip = 0.0;       ///< per write: flip one bit of the value
  double dropped_write = 0.0;    ///< per write: swallow it entirely
  double stuck_busy = 0.0;       ///< per status read: start a busy burst
  double spurious_overrun = 0.0; ///< per status read: overrun bit reads set
  /// Length of a stuck-busy burst (consecutive status reads forced busy).
  std::size_t stuck_busy_reads = 3;

  friend bool operator==(const FaultRates&, const FaultRates&) = default;

  /// All five classes at the same per-access rate.
  static FaultRates uniform(double rate) {
    FaultRates r;
    r.read_flip = r.write_flip = r.dropped_write = r.stuck_busy =
        r.spurious_overrun = rate;
    return r;
  }
};

/// How many faults of each class this bus actually injected.
struct FaultCounts {
  std::uint64_t read_flips = 0;
  std::uint64_t write_flips = 0;
  std::uint64_t dropped_writes = 0;
  std::uint64_t stuck_busy_bursts = 0;
  std::uint64_t stuck_busy_reads = 0;  ///< total polls forced busy
  std::uint64_t spurious_overruns = 0;

  std::uint64_t total() const {
    return read_flips + write_flips + dropped_writes + stuck_busy_bursts +
           spurious_overruns;
  }
};

class FaultyBus final : public BusInterface {
 public:
  FaultyBus(BusInterface& inner, FaultRates rates, std::uint64_t seed);

  std::uint32_t read32(Addr addr) override;
  void write32(Addr addr, std::uint32_t value) override;

  /// Attempted traffic at this layer (dropped writes included).
  const BusStats& bus_stats() const override { return stats_; }

  const FaultCounts& injected() const { return counts_; }
  const FaultRates& rates() const { return rates_; }

 private:
  bool roll(double rate);

  BusInterface& inner_;
  FaultRates rates_;
  SplitMix64 rng_;
  BusStats stats_;
  FaultCounts counts_;
  std::size_t busy_reads_left_ = 0;
};

}  // namespace tmsim::fpga
