// Timestamped cyclic buffers — the ARM↔FPGA decoupling mechanism (§5.2):
//
//  "The data in the buffers has a timestamp and can be read or written by
//   the ARM9. The timestamps make it possible to store only valid data
//   [...] The cyclic buffers make it possible to run the simulation
//   independently from the copying of data."
//
// One side is hardware (the FPGA design), the other software (the ARM).
// Each entry is a (timestamp, payload) pair; timestamps are system-cycle
// numbers, so sparse traffic costs no storage or copy bandwidth for the
// idle cycles in between. Under- and overrun must never corrupt the
// simulated traffic (§5.3), so producers check free space and consumers
// check fill level explicitly.
#pragma once

#include <cstdint>
#include <optional>

#include "common/ring_buffer.h"
#include "common/types.h"

namespace tmsim::fpga {

/// One buffer entry: the system cycle the payload belongs to, plus a
/// 32-bit payload word (a flit encoding fits in 21 bits).
struct TimedWord {
  SystemCycle timestamp = 0;
  std::uint32_t data = 0;

  friend bool operator==(const TimedWord&, const TimedWord&) = default;
};

/// Cyclic buffer of TimedWords with explicit producer/consumer roles.
class CyclicBuffer {
 public:
  explicit CyclicBuffer(std::size_t capacity) : buf_(capacity) {}

  std::size_t capacity() const { return buf_.capacity(); }
  std::size_t fill() const { return buf_.size(); }
  std::size_t free_space() const { return buf_.capacity() - buf_.size(); }
  bool empty() const { return buf_.empty(); }
  bool full() const { return buf_.full(); }

  /// Producer side. Throws on overrun — both the ARM software and the
  /// FPGA control logic check free_space() first, and a violation means
  /// the flow control of §5.3 is broken.
  void push(TimedWord w) { buf_.push(w); }

  /// Consumer: next entry without removing it.
  const TimedWord& front() const { return buf_.front(); }

  /// Consumer: removes and returns the next entry.
  TimedWord pop() { return buf_.pop(); }

  /// Consumer: pops the entry only if its timestamp is due (<= now).
  /// This is how the stimuli interface replays traffic cycle-accurately.
  std::optional<TimedWord> pop_if_due(SystemCycle now) {
    if (buf_.empty() || buf_.front().timestamp > now) {
      return std::nullopt;
    }
    return buf_.pop();
  }

  /// "For the buffers that are not interesting we can update the
  ///  read-pointer, which empties the buffer." (§5.3, step 4)
  void discard_all() { buf_.clear(); }

  /// Storage bits of this buffer (for the resource model): each entry
  /// holds a 32-bit payload and a timestamp register.
  static constexpr std::size_t kTimestampBits = 24;
  std::size_t storage_bits() const {
    return buf_.capacity() * (32 + kTimestampBits);
  }

 private:
  RingBuffer<TimedWord> buf_;
};

}  // namespace tmsim::fpga
