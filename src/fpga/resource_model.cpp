#include "fpga/resource_model.h"

#include <algorithm>
#include <cmath>

namespace tmsim::fpga {

namespace {

// --- Calibrated logic coefficients (see header) ----------------------------
// LUT4-based slice estimates; 2 LUTs + 2 FFs per Virtex-II slice.

/// Slices for an n-to-1 multiplexer of `bits` bits (tree of 4:1 LUT muxes,
/// ~n/3 LUTs per bit → n/6 slices per bit).
std::size_t mux_slices(std::size_t inputs, std::size_t bits) {
  return std::max<std::size_t>(1, inputs * bits / 6);
}

/// Slices for one round-robin arbiter over `n` requesters, including the
/// eligibility comparators (route match + credit test + lock match per
/// requester — roughly 12 LUTs each, calibrated).
std::size_t arbiter_slices(std::size_t n) { return n * 6 + 8; }

/// Slices for the per-queue bookkeeping datapath (pointer increments,
/// route compute share, lock updates).
std::size_t queue_logic_slices() { return 18; }

/// Slices for one credit counter + its compare logic.
std::size_t credit_logic_slices() { return 5; }

/// Flip-flops fit 2 per slice.
std::size_t ff_slices(std::size_t ffs) { return (ffs + 1) / 2; }

}  // namespace

std::size_t ResourceModel::brams_for(std::size_t depth, std::size_t width) {
  TMSIM_CHECK_MSG(depth <= 512,
                  "model assumes ≤512-deep memories (36-bit BRAM aspect)");
  return std::max<std::size_t>(1, (width + 35) / 36);
}

ResourceReport ResourceModel::simulator_usage(
    const FpgaBuildConfig& build) const {
  const noc::RouterConfig& rc = build.router;
  const noc::RouterStateCodec codec(rc);
  const std::size_t n = build.max_routers;
  ResourceReport rep;

  // --- Router block: one copy of the combinational router logic plus the
  // state-memory word registers (old + new latches around the BRAM).
  {
    const std::size_t nq = rc.num_queues();
    std::size_t slices = 0;
    slices += noc::kPorts * mux_slices(nq, noc::kFlitBits + 3);  // crossbar
    slices += noc::kPorts * arbiter_slices(nq);                  // arbiters
    slices += nq * queue_logic_slices();
    slices += nq * credit_logic_slices();
    slices += noc::kPorts * 40;  // XY route units (one per input port)
    // No explicit state-word latches: the BlockRAM ports register the old
    // word on read and absorb the new word on write (the 2-cycle delta).
    // State memory: 2 banks × max_routers words of state_bits.
    const std::size_t brams = brams_for(2 * n > 512 ? 512 : 2 * n,
                                        codec.state_bits());
    rep.rows.push_back(ResourceUsage{"Router", slices, brams});
  }

  // --- Stimuli interface: per-(router,VC) input buffers, per-router
  // output buffers, the two monitor buffers, and the injection logic.
  {
    const std::size_t entry_bits = 32 + CyclicBuffer::kTimestampBits;
    const std::size_t stim_bits =
        n * rc.num_vcs * build.stimuli_buffer_depth * entry_bits;
    const std::size_t out_bits = n * build.output_buffer_depth * entry_bits;
    const std::size_t mon_bits = 2 * build.monitor_buffer_depth * entry_bits;
    // Buffer RAM is pooled into 18-kbit blocks (the design packs several
    // logical buffers into one BRAM with an address offset per buffer).
    const std::size_t brams =
        (stim_bits + out_bits + mon_bits + 18431) / 18432;
    // Injection logic: per-VC credit counter + RR pick + due-compare.
    const std::size_t slices =
        ff_slices(rc.num_vcs * rc.credit_bits() + 8) + rc.num_vcs * 12 + 60 +
        ff_slices(2 * entry_bits);
    rep.rows.push_back(ResourceUsage{"Stimuli interface", slices, brams});
  }

  // --- Network: the link memory (one position per directed link group,
  // plus its HBR bit), the stability bits and the round-robin scheduler,
  // and the topology addressing function (§7.1).
  {
    const std::size_t fwd_bits = noc::kForwardBits + 1;   // value + HBR
    const std::size_t cr_bits = rc.num_vcs + 1;
    // One memory per port direction: 5 forward + 5 credit, each n deep.
    std::size_t brams = 0;
    brams += noc::kPorts * brams_for(n, fwd_bits);
    brams += noc::kPorts * brams_for(n, cr_bits);
    brams += 1;  // stability / HBR group bits per router
    // Scheduler: round-robin over n unstable flags + address generation +
    // the torus/mesh neighbour addressing function.
    const std::size_t slices = n / 2 + 220 + 5 * 40;
    rep.rows.push_back(ResourceUsage{"Network", slices, brams});
  }

  // --- Random number generator: the paper's block is large (2021
  // slices) — a wide parallelized LFSR producing 32 fresh bits per read.
  // Modeled as 32 parallel 32-bit LFSR lanes plus the leapfrog matrix.
  {
    const std::size_t slices = ff_slices(32 * 32) + 32 * 45;
    rep.rows.push_back(ResourceUsage{"Random number generator", slices, 0});
  }

  // --- Global control: the memory interface decode, control/status
  // registers and the period sequencer.
  {
    const std::size_t slices = 380 + ff_slices(16 * 32);
    rep.rows.push_back(ResourceUsage{"Global control", slices, 0});
  }

  for (const ResourceUsage& row : rep.rows) {
    rep.total_slices += row.slices;
    rep.total_brams += row.brams;
  }
  rep.slice_fraction =
      static_cast<double>(rep.total_slices) / budget_.slices;
  rep.bram_fraction =
      static_cast<double>(rep.total_brams) / budget_.block_rams;
  return rep;
}

ResourceUsage ResourceModel::parallel_router(const noc::RouterConfig& router,
                                             std::size_t datapath_bits) const {
  // Fully parallel instantiation: every register in flip-flops, crossbar
  // in tri-state buffers (the 2002-era idiom that exhausted the TBUFs).
  const std::size_t nq = router.num_queues();
  const std::size_t flit_bits = datapath_bits + 2;  // payload + type
  std::size_t ffs = 0;
  ffs += nq * router.queue_depth * flit_bits;          // queue slots
  ffs += nq * (2 * router.ptr_bits() + 2 + 3);         // pointers + lock
  ffs += nq * (4 + router.credit_bits());              // out-VC state
  ffs += noc::kPorts * router.rr_bits();               // arbiter pointers
  std::size_t slices = ff_slices(ffs);
  slices += noc::kPorts * arbiter_slices(nq);
  slices += nq * queue_logic_slices();
  slices += nq * credit_logic_slices();
  // Crossbar on tri-states: one TBUF per (queue, output, bit).
  const std::size_t tbufs = nq * noc::kPorts * flit_bits;
  ResourceUsage u;
  u.block = "parallel router (" + std::to_string(datapath_bits) + "-bit)";
  u.slices = slices;
  u.brams = 0;
  // Stash tbufs in the report via the name; callers use
  // max_parallel_routers for the real constraint arithmetic.
  u.block += ", tbufs=" + std::to_string(tbufs);
  return u;
}

std::size_t ResourceModel::max_parallel_routers(
    const noc::RouterConfig& router, std::size_t datapath_bits) const {
  const std::size_t nq = router.num_queues();
  const std::size_t flit_bits = datapath_bits + 2;
  const ResourceUsage u = parallel_router(router, datapath_bits);
  const std::size_t tbufs = nq * noc::kPorts * flit_bits;
  // Placement/routing never reaches 100 % utilization; 2002-era synthesis
  // on a nearly full XC2V8000 saturated around 70 % of slices and half
  // the theoretical TBUFs (they are shared per long line).
  const auto by_slices = static_cast<std::size_t>(
      0.70 * budget_.slices / static_cast<double>(u.slices));
  const auto by_tbufs = static_cast<std::size_t>(
      0.50 * budget_.tbufs / static_cast<double>(tbufs));
  return std::min(by_slices, by_tbufs);
}

}  // namespace tmsim::fpga
