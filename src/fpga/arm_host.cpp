#include "fpga/arm_host.h"

#include <cmath>

#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "traffic/packet.h"

namespace tmsim::fpga {

using noc::LinkForward;
using traffic::PacketClass;

ArmHost::ArmHost(BusInterface& bus, const FpgaBuildConfig& build,
                 Workload workload)
    : bus_(bus),
      build_(build),
      wl_(std::move(workload)),
      sw_rng_(wl_.rng_seed) {
  counts_.rng_on_fpga = wl_.rng_on_fpga;
}

ArmHost::ArmHost(FpgaDesign& fpga, Workload workload)
    : ArmHost(static_cast<BusInterface&>(fpga), fpga.build(),
              std::move(workload)) {}

// --- Bus access with per-phase accounting ----------------------------------

std::uint32_t ArmHost::rd(Addr addr, Bucket b) {
  switch (b) {
    case Bucket::kGenerate: ++counts_.generate_bus_reads; break;
    case Bucket::kLoad: ++counts_.load_bus_reads; break;
    case Bucket::kRetrieve: ++counts_.retrieve_bus_reads; break;
    case Bucket::kVerify: ++counts_.verify_bus_reads; break;
    case Bucket::kSync: ++counts_.sync_bus_reads; break;
  }
  return bus_.read32(addr);
}

void ArmHost::wr(Addr addr, std::uint32_t value, Bucket b) {
  switch (b) {
    case Bucket::kGenerate: break;  // no generate-phase writes exist
    case Bucket::kLoad: ++counts_.load_bus_writes; break;
    case Bucket::kRetrieve: break;  // retrieve writes are all acks (verify)
    case Bucket::kVerify: ++counts_.verify_bus_writes; break;
    case Bucket::kSync: ++counts_.sync_bus_writes; break;
  }
  bus_.write32(addr, value);
}

std::uint32_t ArmHost::rd_agreed(Addr addr, Bucket b) {
  std::uint32_t prev = rd(addr, b);
  const std::size_t budget = 2 * wl_.max_attempts + 2;
  for (std::size_t i = 0; i < budget; ++i) {
    const std::uint32_t v = rd(addr, b);
    if (v == prev) {
      return v;
    }
    ++fault_report_.read_disagreements;
    prev = v;
  }
  throw ContextualError("bus reads never agree",
                        {{"addr", std::to_string(addr)}});
}

void ArmHost::verified_write(Addr addr, std::uint32_t value,
                             std::uint32_t expect) {
  for (std::size_t attempt = 0; attempt <= wl_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++fault_report_.config_retries;
    }
    wr(addr, value, Bucket::kSync);
    if (rd_agreed(addr, Bucket::kVerify) == expect) {
      return;
    }
  }
  throw ContextualError("verified register write never converged",
                        {{"addr", std::to_string(addr)},
                         {"value", std::to_string(value)}});
}

void ArmHost::abort_run(const std::string& reason) {
  if (fault_report_.aborted) {
    return;  // keep the first (root-cause) reason
  }
  fault_report_.aborted = true;
  fault_report_.abort_reason = reason;
}

// --- Configuration ----------------------------------------------------------

void ArmHost::configure_network(std::size_t width, std::size_t height,
                                noc::Topology topology) {
  const auto w = static_cast<std::uint32_t>(width);
  const auto h = static_cast<std::uint32_t>(height);
  const std::uint32_t topo = topology == noc::Topology::kTorus ? 0u : 1u;
  verified_write(kRegNetWidth, w, w);
  verified_write(kRegNetHeight, h, h);
  verified_write(kRegTopology, topo, topo);

  // Commit, observed through the configuration-generation counter (the
  // commit write itself has no readback).
  const std::uint32_t gen = rd_agreed(kRegConfigGen, Bucket::kVerify);
  bool committed = false;
  for (std::size_t attempt = 0; attempt <= wl_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++fault_report_.config_retries;
    }
    wr(kRegConfigure, 1, Bucket::kSync);
    if (rd_agreed(kRegConfigGen, Bucket::kVerify) != gen) {
      committed = true;
      break;
    }
  }
  if (!committed) {
    throw ContextualError("configuration commit never registered",
                          {{"width", std::to_string(width)},
                           {"height", std::to_string(height)}});
  }

  // The seed register reads back as the LFSR state, which equals the
  // written seed right after seeding (zero maps like hardware reset).
  verified_write(kRegRngSeed, wl_.rng_seed, Lfsr32(wl_.rng_seed).state());
  sw_rng_ = Lfsr32(wl_.rng_seed);
  // Enable the guarded (sequence+checksum tagged) stimuli protocol.
  verified_write(kRegGuard, 1, 1);

  // Host-side mirror of the committed configuration: the hardened host
  // never consults the design object directly.
  net_ = noc::NetworkConfig{};
  net_.width = width;
  net_.height = height;
  net_.topology = topology;
  net_.router = build_.router;
  net_.validate();
  configured_ = true;

  streams_.assign(net_.num_routers() * net_.router.num_vcs, VcStream{});
  be_next_.assign(net_.num_routers(), 0);
  next_seq_.assign(net_.num_routers() * net_.router.num_vcs, 0);
  output_pops_.assign(net_.num_routers(), 0);
  access_monitor_pops_ = 0;
  sent_.clear();
  generated_horizon_ = 0;
  cycles_ = 0;
  sim_cycles_reg_ = 0;
  overloaded_ = false;

  if (wl_.be_load > 0.0) {
    // First BE packet time per node via geometric inter-arrival sampling.
    for (auto& t : be_next_) {
      t = 0;
    }
    for (std::size_t nidx = 0; nidx < be_next_.size(); ++nidx) {
      const double u = next_uniform();
      const double p =
          wl_.be_load /
          static_cast<double>(traffic::payload_flits_for_bytes(wl_.be_bytes) + 1);
      be_next_[nidx] = static_cast<SystemCycle>(
          std::floor(std::log(1.0 - u) / std::log(1.0 - p)));
    }
  }
}

// --- Generate ---------------------------------------------------------------

std::uint32_t ArmHost::next_random() {
  ++counts_.randoms_drawn;
  const std::uint32_t mirror = sw_rng_.next();
  if (wl_.rng_on_fpga) {
    // One bus read per random (§5.3). The software mirror advances in
    // lockstep, so a corrupted read heals locally: the mirror value is
    // authoritative and the hardware LFSR needs no rewind. A persistent
    // mismatch stream shows up as rng_mirror_fixes in the FaultReport.
    const std::uint32_t v = rd(kRegRandom, Bucket::kGenerate);
    if (v != mirror) {
      ++fault_report_.rng_mirror_fixes;
    }
  }
  return mirror;
}

double ArmHost::next_uniform() {
  return static_cast<double>(next_random()) / 4294967296.0;
}

std::uint32_t ArmHost::flight_key(std::size_t dst, unsigned vc,
                                  unsigned seq) const {
  return static_cast<std::uint32_t>((dst << 8) | (vc << 6) | seq);
}

void ArmHost::emit_packet(PacketClass cls, std::size_t src, std::size_t dst,
                          unsigned vc, std::size_t payload_flits,
                          SystemCycle when) {
  std::uint16_t& ctr = next_seq_[dst * net_.router.num_vcs + vc];
  unsigned seq = 0;
  bool found = false;
  for (unsigned attempt = 0; attempt < 64; ++attempt) {
    seq = (ctr + attempt) % 64;
    if (!sent_.contains(flight_key(dst, vc, seq))) {
      found = true;
      break;
    }
  }
  TMSIM_CHECK_MSG(found, "sequence tags exhausted for (dst, vc)");
  ctr = static_cast<std::uint16_t>((seq + 1) % 64);

  const noc::Coord dc = router_coord(net_, dst);
  // Random payload fill — half a 32-bit random per 16-bit flit, which is
  // where the RNG-offload speedup of §8 comes from.
  std::uint32_t word = 0;
  bool have_half = false;
  std::vector<noc::Flit> flits;
  flits.push_back(noc::Flit{
      noc::FlitType::kHead,
      noc::make_head_payload(static_cast<unsigned>(dc.x),
                             static_cast<unsigned>(dc.y), vc, seq)});
  for (std::size_t i = 0; i < payload_flits; ++i) {
    if (!have_half) {
      word = next_random();
      have_half = true;
    } else {
      word >>= 16;
      have_half = false;
    }
    flits.push_back(noc::Flit{i + 1 == payload_flits ? noc::FlitType::kTail
                                                     : noc::FlitType::kBody,
                              static_cast<std::uint16_t>(word & 0xffffu)});
  }

  VcStream& stream = streams_[src * net_.router.num_vcs + vc];
  SystemCycle ts = when;
  for (const noc::Flit& f : flits) {
    stream.pending.push_back(TimedWord{
        ts, encode_forward(LinkForward{true, static_cast<std::uint8_t>(vc), f})});
    ++ts;  // one flit per cycle is the channel capacity
  }
  sent_.emplace(flight_key(dst, vc, seq),
                SentRecord{cls, when, flits.size()});
  counts_.flits_generated += flits.size();
  ++counts_.packets_generated;
}

void ArmHost::generate_up_to(SystemCycle horizon) {
  const std::size_t n = net_.num_routers();

  for (const traffic::GtStream& s : wl_.gt_streams) {
    // Packets of this stream due in [generated_horizon_, horizon).
    SystemCycle t = s.phase;
    if (generated_horizon_ > s.phase) {
      const SystemCycle k =
          (generated_horizon_ - s.phase + s.period - 1) / s.period;
      t = s.phase + k * s.period;
    }
    for (; t < horizon; t += s.period) {
      emit_packet(PacketClass::kGuaranteedThroughput, s.src, s.dst, s.vc,
                  traffic::payload_flits_for_bytes(s.bytes), t);
    }
  }

  if (wl_.be_load > 0.0) {
    const std::size_t payload =
        traffic::payload_flits_for_bytes(wl_.be_bytes);
    const double p = wl_.be_load / static_cast<double>(payload + 1);
    for (std::size_t src = 0; src < n; ++src) {
      while (be_next_[src] < horizon) {
        if (be_next_[src] >= generated_horizon_) {
          std::size_t dst = next_random() % (n - 1);
          if (dst >= src) ++dst;
          const unsigned vc =
              wl_.be_vcs[next_random() % wl_.be_vcs.size()];
          emit_packet(PacketClass::kBestEffort, src, dst, vc, payload,
                      be_next_[src]);
        }
        const double u = next_uniform();
        be_next_[src] += 1 + static_cast<SystemCycle>(std::floor(
                                 std::log(1.0 - u) / std::log(1.0 - p)));
      }
    }
  }
  generated_horizon_ = horizon;
}

// --- Load -------------------------------------------------------------------

bool ArmHost::load_port(std::size_t r, std::size_t vc) {
  VcStream& stream = streams_[r * net_.router.num_vcs + vc];
  if (stream.pending.empty()) {
    stream.stalled_periods = 0;
    return true;
  }
  const Addr free_addr = stimuli_port(r, vc, kPortFree);
  const Addr commit_addr = stimuli_port(r, vc, kPortCommits);
  std::size_t committed_this_period = 0;
  bool settled = false;
  for (std::size_t attempt = 0; attempt <= wl_.max_attempts && !settled;
       ++attempt) {
    if (stream.pending.empty()) {
      settled = true;  // a replay resync consumed the remaining words
      break;
    }
    std::uint32_t free = rd(free_addr, Bucket::kLoad);
    if (free > build_.stimuli_buffer_depth) {
      // Corrupted high; clamp to the physical depth so the push burst
      // stays bounded (the commit verification below catches the rest).
      free = static_cast<std::uint32_t>(build_.stimuli_buffer_depth);
    }
    // Optimistic burst with an undo log: the checkpoint of this port's
    // pending queue is simply the words we popped from it.
    std::vector<TimedWord> undo;
    std::uint32_t pushed = 0;
    while (free > 0 && !stream.pending.empty()) {
      const TimedWord w = stream.pending.front();
      stream.pending.pop_front();
      undo.push_back(w);
      const auto ts32 = static_cast<std::uint32_t>(w.timestamp);
      wr(stimuli_port(r, vc, kPortPushTs), ts32, Bucket::kLoad);
      wr(stimuli_port(r, vc, kPortPushData),
         guard_stimulus(w.data, ts32, stream.commits + pushed),
         Bucket::kLoad);
      --free;
      ++pushed;
    }
    const std::uint32_t expect = stream.commits + pushed;
    const std::uint32_t c_hw = rd_agreed(commit_addr, Bucket::kVerify);
    bool ok = c_hw == expect;
    if (ok && !stream.pending.empty()) {
      // "All input buffers are maximally filled unless no data is
      // available" (§5.3). A short fill (free-space read corrupted low)
      // would change injection timing, so confirm genuine fullness.
      ok = rd_agreed(free_addr, Bucket::kVerify) == 0;
    }
    if (ok) {
      stream.commits = expect;
      committed_this_period += pushed;
      settled = true;
      break;
    }
    // Replay from the accepted prefix: restore the burst into the pending
    // queue, re-credit the words the hardware did commit, clear the
    // sticky reject flag, and go around again.
    ++fault_report_.load_replays;
    if (timeline_) {
      timeline_->instant("fault.load_replay", timeline_->now_us(), 0,
                         {{"router", std::to_string(r)},
                          {"vc", std::to_string(vc)}});
    }
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      stream.pending.push_front(*it);
    }
    const std::uint32_t accepted = c_hw - stream.commits;
    if (accepted > pushed) {
      abort_run("stimuli commit counter diverged on router " +
                std::to_string(r) + " vc " + std::to_string(vc));
      return false;
    }
    for (std::uint32_t i = 0; i < accepted; ++i) {
      stream.pending.pop_front();
    }
    stream.commits += accepted;
    committed_this_period += accepted;
    fault_report_.load_words_resynced += accepted;
    wr(kRegStatus, kStatusLoadFault, Bucket::kVerify);
    ++fault_report_.status_clears;
  }
  if (!settled) {
    abort_run("load phase retries exhausted on router " + std::to_string(r) +
              " vc " + std::to_string(vc));
    return false;
  }
  if (committed_this_period > 0 || stream.pending.empty()) {
    // Any accepted word proves the network is still consuming this VC.
    stream.stalled_periods = 0;
  } else if (++stream.stalled_periods >= wl_.overload_periods) {
    // "If the network is overloaded with traffic and it does not accept
    //  data on virtual channels for a longer time, this is reported to
    //  the user and simulation is stopped." (§5.3)
    overloaded_ = true;
  }
  return true;
}

void ArmHost::load_phase() {
  const std::size_t vcs = net_.router.num_vcs;
  for (std::size_t r = 0; r < net_.num_routers(); ++r) {
    for (std::size_t vc = 0; vc < vcs; ++vc) {
      if (!load_port(r, vc)) {
        return;
      }
    }
  }
}

// --- Simulate ---------------------------------------------------------------

void ArmHost::simulate_phase(std::size_t period) {
  const auto start = static_cast<std::uint32_t>(cycles_);
  const auto want = static_cast<std::uint32_t>(cycles_ + period);
  for (std::size_t attempt = 0; attempt <= wl_.max_attempts; ++attempt) {
    try {
      wr(kRegCtrl, 1, Bucket::kSync);
    } catch (const core::ConvergenceError& e) {
      // The design's netlist did not settle: graceful abort with the
      // structured report instead of a crash mid-run.
      convergence_report_ = e.report();
      abort_run("core convergence failure: " + e.report().summary());
      return;
    }
    // Busy poll, watchdog bounded. The functional model completes
    // synchronously, but a fault layer (or real hardware) can stretch
    // this — the run must never hang on a stuck status bit.
    std::uint32_t status = 0;
    for (std::size_t polls = 0;;) {
      status = rd(kRegStatus, Bucket::kSync);
      if (!(status & kStatusBusy)) {
        break;
      }
      ++fault_report_.busy_polls;
      if (++polls >= wl_.watchdog_polls) {
        ++fault_report_.watchdog_trips;
        if (timeline_) {
          timeline_->instant("fault.watchdog_trip", timeline_->now_us(), 0);
        }
        abort_run("watchdog: simulate phase still busy after " +
                  std::to_string(wl_.watchdog_polls) + " status polls");
        return;
      }
    }
    if (status & kStatusOverrun) {
      if (rd_agreed(kRegStatus, Bucket::kVerify) & kStatusOverrun) {
        abort_run("output buffer overrun flagged by the design");
        return;
      }
      ++fault_report_.spurious_overruns_ignored;
      if (timeline_) {
        timeline_->instant("fault.spurious_overrun", timeline_->now_us(), 0);
      }
    }
    if (status & kStatusLoadFault) {
      // Leftover (or spuriously read) sticky bit; clear it so later
      // periods poll a clean status.
      wr(kRegStatus, kStatusLoadFault, Bucket::kVerify);
      ++fault_report_.status_clears;
    }
    // The run command itself may have been lost; the cycle counter is
    // the ground truth for whether the period executed.
    const std::uint32_t lo = rd_agreed(kRegCycleLo, Bucket::kVerify);
    if (lo == want) {
      cycles_ += period;
      return;
    }
    if (lo == start) {
      ++fault_report_.ctrl_retries;
      if (timeline_) {
        timeline_->instant("fault.ctrl_retry", timeline_->now_us(), 0);
      }
      continue;  // safe to re-issue: the period never started
    }
    abort_run("cycle counter in unexpected state after period: read " +
              std::to_string(lo) + ", expected " + std::to_string(want));
    return;
  }
  abort_run("simulate phase retries exhausted");
}

// --- Retrieve / analyze -----------------------------------------------------

void ArmHost::deliver_output(std::size_t router, std::uint32_t ts,
                             std::uint32_t data) {
  const double t0_us = timeline_ ? timeline_->now_us() : 0.0;
  const LinkForward f = noc::decode_forward(data);
  TMSIM_CHECK_MSG(f.valid, "output buffer holds an idle entry");
  VcStream& stream = streams_[router * net_.router.num_vcs + f.vc];
  if (f.flit.type == noc::FlitType::kHead) {
    const noc::HeadFields h = noc::decode_head(f.flit.payload);
    TMSIM_CHECK_MSG(!stream.receiving,
                    "HEAD while a packet is open (wormhole violation)");
    stream.receiving = true;
    stream.key = flight_key(router, f.vc, h.seq);
    stream.flits_seen = 1;
  } else {
    TMSIM_CHECK_MSG(stream.receiving, "BODY/TAIL with no packet open");
    ++stream.flits_seen;
    if (f.flit.type == noc::FlitType::kTail) {
      const auto it = sent_.find(stream.key);
      TMSIM_CHECK_MSG(it != sent_.end(), "delivery matches no record");
      TMSIM_CHECK_MSG(it->second.flits == stream.flits_seen,
                      "packet delivered with wrong flit count");
      latency_[static_cast<std::size_t>(it->second.cls)].add(
          static_cast<double>(ts - it->second.created));
      ++counts_.packets_analyzed;
      sent_.erase(it);
      stream.receiving = false;
    }
  }
  ++counts_.flits_analyzed;
  if (timeline_) {
    analyze_us_accum_ += timeline_->now_us() - t0_us;
  }
}

bool ArmHost::drain_port(
    Addr base, std::uint32_t& pops,
    const std::function<void(std::uint32_t, std::uint32_t)>& deliver) {
  const std::uint32_t fill = rd(base + kPortFill, Bucket::kRetrieve);
  if (fill == 0 && rd_agreed(base + kPortFill, Bucket::kVerify) == 0) {
    return true;  // agreed empty — the common idle-port fast path
  }
  // Drain to empty, keyed on the hardware tag rather than a counter: the
  // fill read above may itself be corrupted either way. Every word is
  // validated against its tag's checksum before it reaches the analysis
  // state, and acknowledged explicitly; a lost ack is re-sent when the
  // stale tag shows up again. Bounded, like every recovery loop.
  const std::size_t bound =
      (build_.output_buffer_depth + 4) * (wl_.max_attempts + 4);
  for (std::size_t iter = 0; iter < bound; ++iter) {
    const std::uint32_t tag = rd(base + kPortTag, Bucket::kVerify);
    if (!(tag & kTagValidBit)) {
      if (rd_agreed(base + kPortFill, Bucket::kVerify) == 0) {
        return true;  // genuinely drained
      }
      ++fault_report_.retrieve_retries;  // corrupted tag read
      continue;
    }
    const std::uint32_t seq = tag & 63u;
    if (seq == ((pops + 63u) & 63u)) {
      // Front entry is one we already processed: our ack was lost.
      // Re-acking is idempotent (the hardware ignores stale acks).
      wr(base + kPortAck, seq, Bucket::kVerify);
      ++fault_report_.reacks;
      continue;
    }
    if (seq != (pops & 63u)) {
      ++fault_report_.retrieve_retries;  // corrupted tag read
      continue;
    }
    std::uint32_t ts = 0;
    std::uint32_t data = 0;
    try {
      ts = rd(base + kPortPopTs, Bucket::kRetrieve);
      data = rd(base + kPortPeekData, Bucket::kRetrieve);
    } catch (const Error&) {
      // A corrupted tag can read as valid on an empty buffer, whose
      // timestamp port then rejects the access; retry resolves it.
      ++fault_report_.retrieve_retries;
      continue;
    }
    if (((tag >> 6) & 3u) != word_checksum(data, ts)) {
      ++fault_report_.retrieve_retries;  // ts, data, or tag corrupted
      continue;
    }
    deliver(ts, data);
    wr(base + kPortAck, pops & 63u, Bucket::kVerify);
    ++pops;
  }
  abort_run("retrieve drain exceeded its iteration bound");
  return false;
}

void ArmHost::retrieve_phase() {
  // Ports are drained fully and in a fixed order so the floating-point
  // accumulation order of the statistics is identical run to run — the
  // precondition for the bit-identical recovery guarantee.
  for (std::size_t r = 0; r < net_.num_routers(); ++r) {
    if (!drain_port(output_port(r, 0), output_pops_[r],
                    [this, r](std::uint32_t ts, std::uint32_t data) {
                      deliver_output(r, ts, data);
                    })) {
      return;
    }
  }
  // Drain the access-delay monitor.
  if (!drain_port(kAccessMonitorBase, access_monitor_pops_,
                  [this](std::uint32_t, std::uint32_t data) {
                    access_delay_.add(static_cast<double>(data));
                  })) {
    return;
  }
}

// --- The five-phase loop ----------------------------------------------------

void ArmHost::run(std::size_t total_cycles) {
  run_incremental(total_cycles);
  sync_hw_counters();
}

void ArmHost::run_incremental(std::size_t total_cycles) {
  TMSIM_CHECK_MSG(configured_, "call configure_network() before run()");
  // "the simulation period is fixed to the size of the VC stimuli
  //  buffers in the FPGA" (§5.3).
  const std::size_t p = build_.stimuli_buffer_depth;
  // Emits a phase span covering the wall time since the previous mark
  // when a timeline is attached; a no-op (one branch) otherwise.
  double mark_us = timeline_ ? timeline_->now_us() : 0.0;
  auto phase_span = [&](const char* name) {
    if (!timeline_) {
      return;
    }
    const double now = timeline_->now_us();
    timeline_->span(name, mark_us, now - mark_us, 0,
                    {{"period", std::to_string(counts_.periods)}});
    mark_us = now;
  };
  try {
    if (sim_cycles_reg_ != static_cast<std::uint32_t>(p)) {
      verified_write(kRegSimCycles, static_cast<std::uint32_t>(p),
                     static_cast<std::uint32_t>(p));
      sim_cycles_reg_ = static_cast<std::uint32_t>(p);
    }
    while (cycles_ < total_cycles && !overloaded_ && !aborted()) {
      if (cancel_check_ && cancel_check_()) {
        break;  // cooperative cancellation at a period boundary
      }
      if (timeline_) {
        mark_us = timeline_->now_us();
      }
      generate_up_to(cycles_ + 2 * p);
      phase_span("host.generate");
      load_phase();
      phase_span("host.load");
      if (aborted()) break;
      simulate_phase(p);
      phase_span("host.simulate");
      if (aborted()) break;
      analyze_us_accum_ = 0.0;
      retrieve_phase();
      phase_span("host.retrieve");
      if (timeline_) {
        // Analysis runs inline during the drain (deliver_output); its
        // accumulated time is re-emitted as a synthetic span so the five
        // Table 4 phases all appear on the timeline.
        timeline_->span("host.analyze", mark_us, analyze_us_accum_, 0,
                        {{"period", std::to_string(counts_.periods)},
                         {"synthetic", "rebinned from host.retrieve"}});
      }
      ++counts_.periods;
    }
  } catch (const core::ConvergenceError& e) {
    convergence_report_ = e.report();
    abort_run("core convergence failure: " + e.report().summary());
  } catch (const ContextualError& e) {
    // A recovery loop exhausted its budget outside the phase-level
    // handling (e.g. reads that never agree): graceful structured abort.
    abort_run(e.what());
  } catch (const Error& e) {
    // Fault rates far beyond the recoverable envelope can desynchronize
    // the host mirror until the design itself rejects the traffic (a
    // consistently-corrupted "agreed" read has probability ~rate²). Even
    // then the contract holds: a structured abort, never a crash.
    abort_run(std::string("unrecoverable design/protocol error: ") +
              e.what());
  }
  counts_.system_cycles = cycles_;
}

void ArmHost::sync_hw_counters() {
  try {
    counts_.fpga_clock_cycles =
        (static_cast<std::uint64_t>(rd_agreed(kRegFpgaClkHi, Bucket::kSync))
         << 32) |
        rd_agreed(kRegFpgaClkLo, Bucket::kSync);
    fault_report_.hw_rejected_words = rd_agreed(kRegFaults, Bucket::kSync);
  } catch (const ContextualError& e) {
    // Reads that never agree within the retry budget: structured abort,
    // same contract as run().
    abort_run(e.what());
  }
}

// --- Observability export ---------------------------------------------------

void ArmHost::export_metrics(obs::MetricsRegistry& registry,
                             const TimingModel& timing) const {
  // PhaseCounts — the raw events the timing model consumes.
  registry.counter("host.flits_generated").set(counts_.flits_generated);
  registry.counter("host.packets_generated").set(counts_.packets_generated);
  registry.counter("host.randoms_drawn").set(counts_.randoms_drawn);
  registry.counter("host.bus.generate_reads").set(counts_.generate_bus_reads);
  registry.counter("host.bus.load_reads").set(counts_.load_bus_reads);
  registry.counter("host.bus.load_writes").set(counts_.load_bus_writes);
  registry.counter("host.bus.retrieve_reads").set(counts_.retrieve_bus_reads);
  registry.counter("host.bus.verify_reads").set(counts_.verify_bus_reads);
  registry.counter("host.bus.verify_writes").set(counts_.verify_bus_writes);
  registry.counter("host.bus.sync_reads").set(counts_.sync_bus_reads);
  registry.counter("host.bus.sync_writes").set(counts_.sync_bus_writes);
  registry.counter("host.flits_analyzed").set(counts_.flits_analyzed);
  registry.counter("host.packets_analyzed").set(counts_.packets_analyzed);
  registry.counter("host.periods").set(counts_.periods);
  registry.counter("host.system_cycles").set(counts_.system_cycles);
  registry.counter("host.fpga_clock_cycles").set(counts_.fpga_clock_cycles);

  // FaultReport — the PR-1 robustness layer's recovery ledger.
  registry.counter("host.fault.rng_mirror_fixes")
      .set(fault_report_.rng_mirror_fixes);
  registry.counter("host.fault.config_retries")
      .set(fault_report_.config_retries);
  registry.counter("host.fault.ctrl_retries").set(fault_report_.ctrl_retries);
  registry.counter("host.fault.load_replays").set(fault_report_.load_replays);
  registry.counter("host.fault.load_words_resynced")
      .set(fault_report_.load_words_resynced);
  registry.counter("host.fault.hw_rejected_words")
      .set(fault_report_.hw_rejected_words);
  registry.counter("host.fault.retrieve_retries")
      .set(fault_report_.retrieve_retries);
  registry.counter("host.fault.reacks").set(fault_report_.reacks);
  registry.counter("host.fault.read_disagreements")
      .set(fault_report_.read_disagreements);
  registry.counter("host.fault.spurious_overruns_ignored")
      .set(fault_report_.spurious_overruns_ignored);
  registry.counter("host.fault.status_clears")
      .set(fault_report_.status_clears);
  registry.counter("host.fault.busy_polls").set(fault_report_.busy_polls);
  registry.counter("host.fault.watchdog_trips")
      .set(fault_report_.watchdog_trips);

  // Table 3/4 — seconds, the headline rate and the phase shares, as the
  // timing model evaluates them from the counts above.
  const PhaseTimes t = timing.evaluate(counts_);
  registry.gauge("host.phase.generate_seconds").set(t.generate);
  registry.gauge("host.phase.load_seconds").set(t.load);
  registry.gauge("host.phase.simulate_raw_seconds").set(t.simulate_raw);
  registry.gauge("host.phase.simulate_visible_seconds")
      .set(t.simulate_visible);
  registry.gauge("host.phase.retrieve_seconds").set(t.retrieve);
  registry.gauge("host.phase.analyze_seconds").set(t.analyze);
  registry.gauge("host.phase.verify_seconds").set(t.verify);
  registry.gauge("host.phase.wall_seconds").set(t.wall);
  registry.gauge("host.cycles_per_second").set(t.cycles_per_second);
  registry.gauge("host.share.generate").set(t.share_generate());
  registry.gauge("host.share.load").set(t.share_load());
  registry.gauge("host.share.simulate").set(t.share_simulate());
  registry.gauge("host.share.retrieve").set(t.share_retrieve());
  registry.gauge("host.share.analyze").set(t.share_analyze());
  registry.gauge("host.share.verify").set(t.share_verify());
}

}  // namespace tmsim::fpga
