#include "fpga/arm_host.h"

#include <cmath>

#include "traffic/packet.h"

namespace tmsim::fpga {

using noc::LinkForward;
using traffic::PacketClass;

ArmHost::ArmHost(FpgaDesign& fpga, Workload workload)
    : fpga_(fpga), wl_(std::move(workload)), sw_rng_(wl_.rng_seed) {
  counts_.rng_on_fpga = wl_.rng_on_fpga;
}

void ArmHost::configure_network(std::size_t width, std::size_t height,
                                noc::Topology topology) {
  fpga_.write32(kRegNetWidth, static_cast<std::uint32_t>(width));
  fpga_.write32(kRegNetHeight, static_cast<std::uint32_t>(height));
  fpga_.write32(kRegTopology,
                topology == noc::Topology::kTorus ? 0u : 1u);
  fpga_.write32(kRegConfigure, 1);
  fpga_.write32(kRegRngSeed, wl_.rng_seed);
  sw_rng_ = Lfsr32(wl_.rng_seed);

  const noc::NetworkConfig& net = fpga_.network();
  streams_.assign(net.num_routers() * net.router.num_vcs, VcStream{});
  be_next_.assign(net.num_routers(), 0);
  next_seq_.assign(net.num_routers() * net.router.num_vcs, 0);
  sent_.clear();
  generated_horizon_ = 0;
  overloaded_ = false;

  if (wl_.be_load > 0.0) {
    // First BE packet time per node via geometric inter-arrival sampling.
    for (auto& t : be_next_) {
      t = 0;
    }
    for (std::size_t nidx = 0; nidx < be_next_.size(); ++nidx) {
      const double u = next_uniform();
      const double p =
          wl_.be_load /
          static_cast<double>(traffic::payload_flits_for_bytes(wl_.be_bytes) + 1);
      be_next_[nidx] = static_cast<SystemCycle>(
          std::floor(std::log(1.0 - u) / std::log(1.0 - p)));
    }
  }
}

std::uint32_t ArmHost::next_random() {
  ++counts_.randoms_drawn;
  if (wl_.rng_on_fpga) {
    // Bus read from the RNG register; the software mirror stays in sync
    // so that both modes simulate the identical traffic.
    const std::uint32_t v = fpga_.read32(kRegRandom);
    const std::uint32_t mirror = sw_rng_.next();
    TMSIM_CHECK_MSG(v == mirror, "FPGA RNG out of sync with the mirror");
    return v;
  }
  return sw_rng_.next();
}

double ArmHost::next_uniform() {
  return static_cast<double>(next_random()) / 4294967296.0;
}

std::uint32_t ArmHost::flight_key(std::size_t dst, unsigned vc,
                                  unsigned seq) const {
  return static_cast<std::uint32_t>((dst << 8) | (vc << 6) | seq);
}

void ArmHost::emit_packet(PacketClass cls, std::size_t src, std::size_t dst,
                          unsigned vc, std::size_t payload_flits,
                          SystemCycle when) {
  const noc::NetworkConfig& net = fpga_.network();
  std::uint16_t& ctr = next_seq_[dst * net.router.num_vcs + vc];
  unsigned seq = 0;
  bool found = false;
  for (unsigned attempt = 0; attempt < 64; ++attempt) {
    seq = (ctr + attempt) % 64;
    if (!sent_.contains(flight_key(dst, vc, seq))) {
      found = true;
      break;
    }
  }
  TMSIM_CHECK_MSG(found, "sequence tags exhausted for (dst, vc)");
  ctr = static_cast<std::uint16_t>((seq + 1) % 64);

  const noc::Coord dc = router_coord(net, dst);
  // Random payload fill — half a 32-bit random per 16-bit flit, which is
  // where the RNG-offload speedup of §8 comes from.
  std::uint32_t word = 0;
  bool have_half = false;
  std::vector<noc::Flit> flits;
  flits.push_back(noc::Flit{
      noc::FlitType::kHead,
      noc::make_head_payload(static_cast<unsigned>(dc.x),
                             static_cast<unsigned>(dc.y), vc, seq)});
  for (std::size_t i = 0; i < payload_flits; ++i) {
    if (!have_half) {
      word = next_random();
      have_half = true;
    } else {
      word >>= 16;
      have_half = false;
    }
    flits.push_back(noc::Flit{i + 1 == payload_flits ? noc::FlitType::kTail
                                                     : noc::FlitType::kBody,
                              static_cast<std::uint16_t>(word & 0xffffu)});
  }

  VcStream& stream = streams_[src * net.router.num_vcs + vc];
  SystemCycle ts = when;
  for (const noc::Flit& f : flits) {
    stream.pending.push_back(TimedWord{
        ts, encode_forward(LinkForward{true, static_cast<std::uint8_t>(vc), f})});
    ++ts;  // one flit per cycle is the channel capacity
  }
  sent_.emplace(flight_key(dst, vc, seq),
                SentRecord{cls, when, flits.size()});
  counts_.flits_generated += flits.size();
  ++counts_.packets_generated;
}

void ArmHost::generate_up_to(SystemCycle horizon) {
  const noc::NetworkConfig& net = fpga_.network();
  const std::size_t n = net.num_routers();

  for (const traffic::GtStream& s : wl_.gt_streams) {
    // Packets of this stream due in [generated_horizon_, horizon).
    SystemCycle t = s.phase;
    if (generated_horizon_ > s.phase) {
      const SystemCycle k =
          (generated_horizon_ - s.phase + s.period - 1) / s.period;
      t = s.phase + k * s.period;
    }
    for (; t < horizon; t += s.period) {
      emit_packet(PacketClass::kGuaranteedThroughput, s.src, s.dst, s.vc,
                  traffic::payload_flits_for_bytes(s.bytes), t);
    }
  }

  if (wl_.be_load > 0.0) {
    const std::size_t payload =
        traffic::payload_flits_for_bytes(wl_.be_bytes);
    const double p = wl_.be_load / static_cast<double>(payload + 1);
    for (std::size_t src = 0; src < n; ++src) {
      while (be_next_[src] < horizon) {
        if (be_next_[src] >= generated_horizon_) {
          std::size_t dst = next_random() % (n - 1);
          if (dst >= src) ++dst;
          const unsigned vc =
              wl_.be_vcs[next_random() % wl_.be_vcs.size()];
          emit_packet(PacketClass::kBestEffort, src, dst, vc, payload,
                      be_next_[src]);
        }
        const double u = next_uniform();
        be_next_[src] += 1 + static_cast<SystemCycle>(std::floor(
                                 std::log(1.0 - u) / std::log(1.0 - p)));
      }
    }
  }
  generated_horizon_ = horizon;
}

void ArmHost::load_phase() {
  const noc::NetworkConfig& net = fpga_.network();
  const std::size_t vcs = net.router.num_vcs;
  for (std::size_t r = 0; r < net.num_routers(); ++r) {
    for (std::size_t vc = 0; vc < vcs; ++vc) {
      VcStream& stream = streams_[r * vcs + vc];
      if (stream.pending.empty()) {
        stream.stalled_periods = 0;
        continue;
      }
      std::uint32_t free =
          fpga_.read32(stimuli_port(r, vc, kPortFree));
      bool any = false;
      while (free > 0 && !stream.pending.empty()) {
        const TimedWord w = stream.pending.front();
        stream.pending.pop_front();
        fpga_.write32(stimuli_port(r, vc, kPortPushTs),
                      static_cast<std::uint32_t>(w.timestamp));
        fpga_.write32(stimuli_port(r, vc, kPortPushData), w.data);
        --free;
        any = true;
      }
      if (!any) {
        // "If the network is overloaded with traffic and it does not
        //  accept data on virtual channels for a longer time, this is
        //  reported to the user and simulation is stopped." (§5.3)
        if (++stream.stalled_periods >= wl_.overload_periods) {
          overloaded_ = true;
        }
      } else {
        stream.stalled_periods = 0;
      }
    }
  }
}

void ArmHost::retrieve_phase() {
  const noc::NetworkConfig& net = fpga_.network();
  const std::size_t vcs = net.router.num_vcs;
  for (std::size_t r = 0; r < net.num_routers(); ++r) {
    std::uint32_t fill = fpga_.read32(output_port(r, kPortFill));
    while (fill-- > 0) {
      const auto ts = fpga_.read32(output_port(r, kPortPopTs));
      const auto data = fpga_.read32(output_port(r, kPortPopData));
      const LinkForward f = noc::decode_forward(data);
      TMSIM_CHECK_MSG(f.valid, "output buffer holds an idle entry");
      VcStream& stream = streams_[r * vcs + f.vc];
      if (f.flit.type == noc::FlitType::kHead) {
        const noc::HeadFields h = noc::decode_head(f.flit.payload);
        TMSIM_CHECK_MSG(!stream.receiving,
                        "HEAD while a packet is open (wormhole violation)");
        stream.receiving = true;
        stream.key = flight_key(r, f.vc, h.seq);
        stream.flits_seen = 1;
      } else {
        TMSIM_CHECK_MSG(stream.receiving, "BODY/TAIL with no packet open");
        ++stream.flits_seen;
        if (f.flit.type == noc::FlitType::kTail) {
          const auto it = sent_.find(stream.key);
          TMSIM_CHECK_MSG(it != sent_.end(), "delivery matches no record");
          TMSIM_CHECK_MSG(it->second.flits == stream.flits_seen,
                          "packet delivered with wrong flit count");
          latency_[static_cast<std::size_t>(it->second.cls)].add(
              static_cast<double>(ts - it->second.created));
          ++counts_.packets_analyzed;
          sent_.erase(it);
          stream.receiving = false;
        }
      }
      ++counts_.flits_analyzed;
    }
  }
  // Drain the access-delay monitor.
  std::uint32_t fill = fpga_.read32(kAccessMonitorBase + kPortFill);
  while (fill-- > 0) {
    (void)fpga_.read32(kAccessMonitorBase + kPortPopTs);
    access_delay_.add(
        static_cast<double>(fpga_.read32(kAccessMonitorBase + kPortPopData)));
  }
}

void ArmHost::run(std::size_t total_cycles) {
  TMSIM_CHECK_MSG(fpga_.configured(),
                  "call configure_network() before run()");
  // "the simulation period is fixed to the size of the VC stimuli
  //  buffers in the FPGA" (§5.3).
  const std::size_t p = fpga_.build().stimuli_buffer_depth;
  fpga_.write32(kRegSimCycles, static_cast<std::uint32_t>(p));

  while (fpga_.cycles_simulated() < total_cycles && !overloaded_) {
    BusStats before = fpga_.bus_stats();
    generate_up_to(fpga_.cycles_simulated() + 2 * p);
    BusStats after_gen = fpga_.bus_stats();
    counts_.generate_bus_reads += after_gen.reads - before.reads;

    load_phase();
    BusStats after_load = fpga_.bus_stats();
    counts_.load_bus_reads += after_load.reads - after_gen.reads;
    counts_.load_bus_writes += after_load.writes - after_gen.writes;

    fpga_.write32(kRegCtrl, 1);  // run one period
    ++counts_.periods;

    BusStats before_ret = fpga_.bus_stats();
    retrieve_phase();
    BusStats after_ret = fpga_.bus_stats();
    counts_.retrieve_bus_reads += after_ret.reads - before_ret.reads;
  }
  counts_.system_cycles = fpga_.cycles_simulated();
  counts_.fpga_clock_cycles = fpga_.fpga_clock_cycles();
}

}  // namespace tmsim::fpga
