// FaultReport: the host-side ledger of everything the hardened ArmHost
// detected and did about it — retries, replays, watchdog activity, and
// whether the run ultimately aborted. Mirrors FaultCounts (what a
// FaultyBus injected) from the recovery side, so a test or bench can
// check that injected ≈ detected+recovered.
#pragma once

#include <cstdint>
#include <string>

namespace tmsim::fpga {

struct FaultReport {
  // Detection / recovery counters.
  std::uint64_t rng_mirror_fixes = 0;     ///< RNG reads healed by the mirror
  std::uint64_t config_retries = 0;       ///< verified-write retry rounds
  std::uint64_t ctrl_retries = 0;         ///< re-issued run-period commands
  std::uint64_t load_replays = 0;         ///< load-phase checkpoint replays
  std::uint64_t load_words_resynced = 0;  ///< words re-credited via commits
  std::uint64_t hw_rejected_words = 0;    ///< kRegFaults at end of run
  std::uint64_t retrieve_retries = 0;     ///< re-read rounds in retrieve
  std::uint64_t reacks = 0;               ///< lost acks re-acknowledged
  std::uint64_t read_disagreements = 0;   ///< agreed-read extra rounds
  std::uint64_t spurious_overruns_ignored = 0;
  std::uint64_t status_clears = 0;        ///< W1C writes to sticky bits
  std::uint64_t busy_polls = 0;           ///< status polls that read busy
  std::uint64_t watchdog_trips = 0;

  // Outcome.
  bool aborted = false;
  std::string abort_reason;

  /// Total recovery actions (any nonzero means faults were observed).
  std::uint64_t total_recovered() const {
    return rng_mirror_fixes + config_retries + ctrl_retries + load_replays +
           retrieve_retries + reacks + read_disagreements +
           spurious_overruns_ignored + busy_polls;
  }

  std::string to_string() const {
    std::string s;
    s += "faults handled: rng_fixes=" + std::to_string(rng_mirror_fixes);
    s += " config_retries=" + std::to_string(config_retries);
    s += " ctrl_retries=" + std::to_string(ctrl_retries);
    s += " load_replays=" + std::to_string(load_replays);
    s += " words_resynced=" + std::to_string(load_words_resynced);
    s += " hw_rejected=" + std::to_string(hw_rejected_words);
    s += " retrieve_retries=" + std::to_string(retrieve_retries);
    s += " reacks=" + std::to_string(reacks);
    s += " read_disagreements=" + std::to_string(read_disagreements);
    s += " spurious_overruns=" + std::to_string(spurious_overruns_ignored);
    s += " status_clears=" + std::to_string(status_clears);
    s += " busy_polls=" + std::to_string(busy_polls);
    s += " watchdog_trips=" + std::to_string(watchdog_trips);
    if (aborted) {
      s += " ABORTED: " + abort_reason;
    }
    return s;
  }
};

}  // namespace tmsim::fpga
