#include "fpga/fpga_design.h"

#include <string>

#include "obs/metrics.h"

namespace tmsim::fpga {

using noc::LinkForward;
using noc::Port;

static_assert(kStimuliPayloadBits == noc::kForwardBits,
              "guarded-push tag bits must sit above the flit encoding");

FpgaDesign::FpgaDesign(const FpgaBuildConfig& build) : build_(build) {
  build_.router.validate();
  TMSIM_CHECK_MSG(build_.max_routers >= 2 && build_.max_routers <= 256,
                  "max_routers must be 2..256");
  TMSIM_CHECK_MSG(build_.stimuli_buffer_depth >= 2, "stimuli buffer too small");
  TMSIM_CHECK_MSG(build_.output_buffer_depth >= build_.stimuli_buffer_depth,
                  "output buffers must cover a full simulation period");
}

FpgaDesign::~FpgaDesign() = default;

void FpgaDesign::attach_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (!registry) {
    m_link_samples_ = m_link_drops_ = m_access_samples_ = m_access_drops_ =
        m_rejects_ = m_cycles_ = m_deltas_ = m_clk_ = nullptr;
    return;
  }
  m_link_samples_ = &registry->counter("fpga.monitor.link_probe.samples");
  m_link_drops_ = &registry->counter("fpga.monitor.link_probe.drops");
  m_access_samples_ = &registry->counter("fpga.monitor.access_delay.samples");
  m_access_drops_ = &registry->counter("fpga.monitor.access_delay.drops");
  m_rejects_ = &registry->counter("fpga.stimuli.rejects");
  m_cycles_ = &registry->counter("fpga.system_cycles");
  m_deltas_ = &registry->counter("fpga.delta_cycles");
  m_clk_ = &registry->counter("fpga.clock_cycles");
}

void FpgaDesign::set_engine_observer(core::SimObserver* observer) {
  engine_observer_ = observer;
  if (sim_) {
    sim_->set_observer(observer);
  }
}

const noc::NetworkConfig& FpgaDesign::network() const {
  TMSIM_CHECK_MSG(sim_ != nullptr, "design not configured");
  return net_;
}

void FpgaDesign::configure() {
  net_ = noc::NetworkConfig{};
  net_.width = reg_width_;
  net_.height = reg_height_;
  net_.topology = reg_topology_ == 0 ? noc::Topology::kTorus
                                     : noc::Topology::kMesh;
  net_.router = build_.router;
  net_.validate();
  TMSIM_CHECK_MSG(net_.num_routers() <= build_.max_routers,
                  "network larger than the BRAM provisioning");

  core::EngineOptions engine_opts;
  engine_opts.policy = core::SchedulePolicy::kDynamic;
  engine_opts.num_shards = build_.num_shards;
  engine_opts.partition = build_.partition;
  engine_opts.seed = build_.engine_seed;
  engine_opts.scheduler = build_.scheduler;
  sim_ = std::make_unique<core::SeqNocSimulation>(net_, engine_opts);
  if (engine_observer_) {
    sim_->set_observer(engine_observer_);
  }

  const std::size_t n = net_.num_routers();
  const std::size_t vcs = net_.router.num_vcs;
  stimuli_.clear();
  output_.clear();
  for (std::size_t i = 0; i < n * vcs; ++i) {
    stimuli_.emplace_back(build_.stimuli_buffer_depth);
  }
  for (std::size_t i = 0; i < n; ++i) {
    output_.emplace_back(build_.output_buffer_depth);
  }
  link_monitor_ = std::make_unique<CyclicBuffer>(build_.monitor_buffer_depth);
  access_monitor_ =
      std::make_unique<CyclicBuffer>(build_.monitor_buffer_depth);
  inject_credits_.assign(n * vcs,
                         static_cast<std::uint8_t>(net_.router.queue_depth));
  inject_rr_.assign(n, 0);
  staged_ts_.assign(n * vcs, 0);
  staged_valid_.assign(n * vcs, 0);
  stimuli_commits_.assign(n * vcs, 0);
  output_pops_.assign(n, 0);
  link_monitor_pops_ = 0;
  access_monitor_pops_ = 0;
  cycles_simulated_ = 0;
  delta_cycles_ = 0;
  fpga_clock_cycles_ = 0;
  monitor_drops_ = 0;
  output_overrun_ = false;
  load_fault_ = false;
  stimuli_rejects_ = 0;
  ++config_generation_;
}

void FpgaDesign::step_one_cycle() {
  const std::size_t n = net_.num_routers();
  const std::size_t vcs = net_.router.num_vcs;

  // Stimuli interfaces: per router, inject at most one due flit whose VC
  // has an injection credit, round-robin over the VCs (§5.2).
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < vcs; ++i) {
      const std::size_t vc = (inject_rr_[r] + i) % vcs;
      CyclicBuffer& buf = stimuli_[r * vcs + vc];
      if (inject_credits_[r * vcs + vc] == 0 || buf.empty() ||
          buf.front().timestamp > cycles_simulated_) {
        continue;
      }
      const TimedWord w = buf.pop();
      const LinkForward f = noc::decode_forward(w.data);
      TMSIM_CHECK_MSG(f.valid && f.vc == vc,
                      "stimuli entry does not match its VC buffer");
      sim_->set_local_input(r, f);
      --inject_credits_[r * vcs + vc];
      inject_rr_[r] = static_cast<std::uint8_t>((vc + 1) % vcs);
      // Access-delay monitor: how long the flit waited past its intended
      // injection time. Dropped when full — monitors may not stall.
      if (f.flit.type == noc::FlitType::kHead) {
        if (access_monitor_->full()) {
          ++monitor_drops_;
          if (metrics_) {
            m_access_drops_->add(1);
          }
        } else {
          access_monitor_->push(TimedWord{
              cycles_simulated_,
              static_cast<std::uint32_t>(cycles_simulated_ - w.timestamp)});
          if (metrics_) {
            m_access_samples_->add(1);
          }
        }
      }
      break;
    }
  }

  sim_->step();
  delta_cycles_ += sim_->last_step_stats().delta_cycles;
  // 2 FPGA clock cycles per delta cycle (memory read; evaluate + write),
  // plus one turnaround cycle per system cycle (HBR reset, bank swap).
  fpga_clock_cycles_ += 2 * sim_->last_step_stats().delta_cycles + 1;

  // Retrieve local outputs and returned credits.
  const std::size_t probe_router = reg_link_probe_ >> 8;
  for (std::size_t r = 0; r < n; ++r) {
    const noc::CreditWires cr = sim_->local_input_credits(r);
    for (std::size_t vc = 0; vc < vcs; ++vc) {
      if (cr.get(vc)) {
        TMSIM_CHECK_MSG(inject_credits_[r * vcs + vc] < net_.router.queue_depth,
                        "stimuli interface credit overflow");
        ++inject_credits_[r * vcs + vc];
      }
    }
    const LinkForward out = sim_->local_output(r);
    if (out.valid) {
      // Output buffers are per router, not per VC (§5.2). Overrun means
      // the ARM did not drain in time; the design flags it — the NI
      // cannot back-pressure the network.
      if (output_[r].full()) {
        output_overrun_ = true;
      } else {
        output_[r].push(TimedWord{cycles_simulated_, encode_forward(out)});
      }
      // Link probe monitor on the local output of the probed router.
      if (r == probe_router && (reg_link_probe_ & 0xff) ==
                                   static_cast<std::uint32_t>(Port::kLocal)) {
        if (link_monitor_->full()) {
          ++monitor_drops_;
          if (metrics_) {
            m_link_drops_->add(1);
          }
        } else {
          link_monitor_->push(TimedWord{cycles_simulated_,
                                        encode_forward(out)});
          if (metrics_) {
            m_link_samples_->add(1);
          }
        }
      }
    }
  }
  ++cycles_simulated_;
  if (metrics_) {
    m_cycles_->add(1);
    m_deltas_->add(sim_->last_step_stats().delta_cycles);
    m_clk_->add(2 * sim_->last_step_stats().delta_cycles + 1);
  }
}

void FpgaDesign::run_period(std::size_t cycles) {
  TMSIM_CHECK_MSG(sim_ != nullptr, "design not configured");
  // "To prevent buffer underrun, the simulation period is fixed to the
  //  size of the VC stimuli buffers in the FPGA." (§5.3)
  TMSIM_CHECK_MSG(cycles >= 1 && cycles <= build_.stimuli_buffer_depth,
                  "period must be 1..stimuli_buffer_depth");
  for (std::size_t i = 0; i < cycles; ++i) {
    step_one_cycle();
  }
}

std::uint32_t FpgaDesign::consumer_read(CyclicBuffer& buf,
                                        std::uint32_t& pops, Addr sub) {
  switch (sub) {
    case kPortFill:
      return static_cast<std::uint32_t>(buf.fill());
    case kPortPopTs:
      return static_cast<std::uint32_t>(buf.front().timestamp);
    case kPortPopData: {
      const std::uint32_t data = buf.pop().data;
      ++pops;  // legacy destructive pop advances the sequence too
      return data;
    }
    case kPortPeekData:
      return buf.empty() ? 0u : buf.front().data;
    case kPortTag:
      // Never throws: an empty buffer reads as the (invalid) zero tag, so
      // the host can probe without risking a bus exception mid-recovery.
      if (buf.empty()) {
        return 0;
      }
      return entry_tag(buf.front().data,
                       static_cast<std::uint32_t>(buf.front().timestamp),
                       pops);
    default:
      throw Error("bad consumer port sub-register");
  }
}

void FpgaDesign::consumer_ack(CyclicBuffer& buf, std::uint32_t& pops,
                              std::uint32_t value) {
  // Pop only when the ack names the current front entry; a stale or
  // corrupted ack is ignored, which makes re-acking idempotent.
  if (!buf.empty() && (value & 63u) == (pops & 63u)) {
    buf.pop();
    ++pops;
  }
}

std::uint32_t FpgaDesign::read32(Addr addr) {
  ++bus_.reads;
  TMSIM_CHECK_MSG(addr < kAddrSpaceWords, "address beyond the 17-bit bus");
  switch (addr) {
    case kRegStatus:
      // Never busy: run is synchronous in this functional model. The
      // sticky fault bits persist until a W1C status write.
      return (output_overrun_ ? kStatusOverrun : 0u) |
             (load_fault_ ? kStatusLoadFault : 0u);
    case kRegRandom:
      return rng_.next();
    case kRegSimCycles:
      return reg_sim_cycles_;
    case kRegNetWidth:
      return reg_width_;
    case kRegNetHeight:
      return reg_height_;
    case kRegTopology:
      return reg_topology_;
    case kRegLinkProbe:
      return reg_link_probe_;
    case kRegRngSeed:
      return rng_.state();
    case kRegConfigGen:
      return config_generation_;
    case kRegGuard:
      return reg_guard_;
    case kRegFaults:
      return static_cast<std::uint32_t>(stimuli_rejects_);
    case kRegCycleLo:
      return static_cast<std::uint32_t>(cycles_simulated_);
    case kRegCycleHi:
      return static_cast<std::uint32_t>(cycles_simulated_ >> 32);
    case kRegDeltaLo:
      return static_cast<std::uint32_t>(delta_cycles_);
    case kRegDeltaHi:
      return static_cast<std::uint32_t>(delta_cycles_ >> 32);
    case kRegFpgaClkLo:
      return static_cast<std::uint32_t>(fpga_clock_cycles_);
    case kRegFpgaClkHi:
      return static_cast<std::uint32_t>(fpga_clock_cycles_ >> 32);
    default:
      break;
  }
  TMSIM_CHECK_MSG(sim_ != nullptr, "design not configured");
  const std::size_t vcs = net_.router.num_vcs;
  if (addr >= kStimuliBase && addr < kOutputBase) {
    const Addr off = addr - kStimuliBase;
    const std::size_t r = off / 16;
    const std::size_t vc = (off % 16) / 4;
    const Addr sub = off % 4;
    TMSIM_CHECK_MSG(r < net_.num_routers() && vc < vcs &&
                        (sub == kPortFree || sub == kPortCommits),
                    "bad stimuli port read");
    const std::size_t port = r * vcs + vc;
    if (sub == kPortCommits) {
      return stimuli_commits_[port];
    }
    return static_cast<std::uint32_t>(stimuli_[port].free_space());
  }
  if (addr >= kOutputBase && addr < kLinkMonitorBase) {
    const Addr off = addr - kOutputBase;
    const std::size_t r = off / 8;
    const Addr sub = off % 8;
    TMSIM_CHECK_MSG(r < net_.num_routers(), "bad output port read");
    return consumer_read(output_[r], output_pops_[r], sub);
  }
  if (addr >= kLinkMonitorBase && addr < kAccessMonitorBase) {
    return consumer_read(*link_monitor_, link_monitor_pops_,
                         addr - kLinkMonitorBase);
  }
  if (addr >= kAccessMonitorBase && addr < kAccessMonitorBase + kPortAck) {
    return consumer_read(*access_monitor_, access_monitor_pops_,
                         addr - kAccessMonitorBase);
  }
  throw Error("unmapped read at address " + std::to_string(addr));
}

void FpgaDesign::write32(Addr addr, std::uint32_t value) {
  ++bus_.writes;
  TMSIM_CHECK_MSG(addr < kAddrSpaceWords, "address beyond the 17-bit bus");
  switch (addr) {
    case kRegCtrl:
      if (value & 1u) {
        run_period(reg_sim_cycles_);
      }
      return;
    case kRegStatus:
      // Write-one-to-clear for the sticky fault bits, so a recovered
      // fault cannot poison later periods' status polling.
      if (value & kStatusOverrun) {
        output_overrun_ = false;
      }
      if (value & kStatusLoadFault) {
        load_fault_ = false;
      }
      return;
    case kRegGuard:
      reg_guard_ = value & 1u;
      return;
    case kRegSimCycles:
      reg_sim_cycles_ = value;
      return;
    case kRegNetWidth:
      reg_width_ = value;
      return;
    case kRegNetHeight:
      reg_height_ = value;
      return;
    case kRegTopology:
      reg_topology_ = value;
      return;
    case kRegConfigure:
      configure();
      return;
    case kRegLinkProbe:
      reg_link_probe_ = value;
      return;
    case kRegRngSeed:
      rng_ = Lfsr32(value);
      return;
    default:
      break;
  }
  TMSIM_CHECK_MSG(sim_ != nullptr, "design not configured");
  const std::size_t vcs = net_.router.num_vcs;
  if (addr >= kStimuliBase && addr < kOutputBase) {
    const Addr off = addr - kStimuliBase;
    const std::size_t r = off / 16;
    const std::size_t vc = (off % 16) / 4;
    const Addr sub = off % 4;
    TMSIM_CHECK_MSG(r < net_.num_routers() && vc < vcs, "bad stimuli port");
    const std::size_t port = r * vcs + vc;
    if (sub == kPortPushTs) {
      staged_ts_[port] = value;
      staged_valid_[port] = 1;
      return;
    }
    if (sub == kPortPushData) {
      if (reg_guard_ & 1u) {
        // Guarded push: the high bits carry a sequence + checksum tag
        // (guard_stimulus()). A word whose tag does not match the port's
        // commit count, whose checksum fails, whose timestamp write was
        // lost, or that would overrun the buffer is rejected: counted,
        // flagged sticky in kRegStatus, and *not* committed — so the
        // commit count exposes exactly the accepted prefix for replay.
        const bool ts_present = staged_valid_[port] != 0;
        staged_valid_[port] = 0;
        const std::uint32_t payload = value & kStimuliPayloadMask;
        const std::uint32_t seq = (value >> kStimuliPayloadBits) & 63u;
        const std::uint32_t cks = (value >> 27) & 3u;
        const std::uint32_t ts32 =
            static_cast<std::uint32_t>(staged_ts_[port]);
        const bool ok = ts_present && seq == (stimuli_commits_[port] & 63u) &&
                        cks == word_checksum(payload, ts32) &&
                        !stimuli_[port].full();
        if (!ok) {
          ++stimuli_rejects_;
          load_fault_ = true;
          if (metrics_) {
            m_rejects_->add(1);
          }
          return;
        }
        stimuli_[port].push(TimedWord{staged_ts_[port], payload});
        ++stimuli_commits_[port];
        return;
      }
      // Unguarded: the stimuli entry register is kForwardBits wide;
      // higher bus bits are simply not connected in hardware.
      staged_valid_[port] = 0;
      stimuli_[port].push(TimedWord{
          staged_ts_[port], value & ((1u << noc::kForwardBits) - 1)});
      ++stimuli_commits_[port];
      return;
    }
    throw Error("bad stimuli port sub-register");
  }
  if (addr >= kOutputBase && addr < kLinkMonitorBase) {
    const Addr off = addr - kOutputBase;
    const std::size_t r = off / 8;
    const Addr sub = off % 8;
    TMSIM_CHECK_MSG(r < net_.num_routers() && sub == kPortAck,
                    "bad output port write");
    consumer_ack(output_[r], output_pops_[r], value);
    return;
  }
  if (addr == kLinkMonitorBase + kPortAck) {
    consumer_ack(*link_monitor_, link_monitor_pops_, value);
    return;
  }
  if (addr == kAccessMonitorBase + kPortAck) {
    consumer_ack(*access_monitor_, access_monitor_pops_, value);
    return;
  }
  throw Error("unmapped write at address " + std::to_string(addr));
}

}  // namespace tmsim::fpga
