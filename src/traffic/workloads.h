// Workload presets and the analytic GT latency guarantee.
//
// Fig. 1's scenario: a 6×6 network carrying a fixed population of GT
// streams (256-byte packets, one stream per VC per link) plus uniform
// random BE traffic (10-byte packets) whose offered load is swept along
// the x-axis.
//
// GT guarantee (§2.1): with one stream per VC and round-robin output
// arbitration, the queues eligible for one output port in a cycle are
// bounded by the VC count: each busy output VC has a single owner, and a
// HEAD can only claim a free VC. Two terms bound a GT flit's service
// interval:
//   - up to num_vcs - 1 grants to the other VC owners, plus
//   - one *head-churn* grant: a competing packet may release its VC and a
//     new HEAD re-claim it within the window (at most once per window,
//     because any packet — minimum HEAD+TAIL, and in this workload ≥ 6
//     flits — occupies the VC for at least as long as the window).
// So the interval is ≤ num_vcs + 1 cycles per flit, and a packet of F
// flits crossing h hops completes within
//
//     L_guarantee = (num_vcs + 1) * F  +  (num_vcs + 1) * h
//
// cycles after its head enters the network (the second term is per-hop
// pipeline fill: queue latency plus arbitration at each hop).
// bench/fig1 plots this line; the property test in tests/traffic asserts
// measured GT max never exceeds it.
#pragma once

#include <cstddef>
#include <vector>

#include "noc/config.h"
#include "noc/topology.h"
#include "traffic/harness.h"
#include "traffic/packet.h"

namespace tmsim::traffic {

/// Worst-case network latency (head injection → tail delivery) of a GT
/// packet with `payload_flits`+1 flits over `hops` links.
inline std::size_t gt_latency_guarantee(const noc::RouterConfig& cfg,
                                        std::size_t total_flits,
                                        std::size_t hops) {
  return (cfg.num_vcs + 1) * total_flits + (cfg.num_vcs + 1) * hops;
}

/// The Fig. 1 GT population: every node sources one 2-hop row stream
/// (east where it stays on-grid, west otherwise — wrap-free on both
/// topologies). Streams starting at even x use VC 0, odd x VC 1, which
/// makes all (link, VC) claims disjoint — validate_gt_streams checks
/// this. BE traffic then runs on VCs 2 and 3.
///
/// `period` controls the fixed GT load (one 256-byte packet — 129 flits —
/// per period per stream).
std::vector<GtStream> fig1_gt_streams(const noc::NetworkConfig& net,
                                      SystemCycle period);

/// Longest hop count over a set of streams (for the guarantee line).
std::size_t max_stream_hops(const noc::NetworkConfig& net,
                            const std::vector<GtStream>& streams);

}  // namespace tmsim::traffic
