#include "traffic/harness.h"

#include <set>
#include <string>

namespace tmsim::traffic {

using noc::Coord;
using noc::LinkForward;
using noc::Port;

TrafficHarness::TrafficHarness(noc::NocSimulation& sim, Options opt)
    : sim_(&sim), net_(sim.config()), opt_(opt), rng_(opt.seed) {
  const noc::NetworkConfig& net = net_;
  const std::size_t n = net.num_routers();
  const std::size_t vcs = net.router.num_vcs;
  nodes_.resize(n);
  for (Node& node : nodes_) {
    node.src_q.resize(vcs);
    node.credits.assign(vcs, net.router.queue_depth);
    node.sending.assign(vcs, false);
    node.send_pos.assign(vcs, 0);
    node.send_record.assign(vcs, 0);
    node.receiving.assign(vcs, 0);
    node.receiving_active.assign(vcs, false);
    node.recv_pos.assign(vcs, 0);
  }
  next_seq_.assign(n * vcs, 0);
}

void TrafficHarness::rebind(noc::NocSimulation& sim) {
  // Validate against our own config copy — the previously bound engine
  // must not be dereferenced here (another worker may own it by now).
  if (!(sim.config() == net_)) {
    throw ContextualError(
        "rebind target simulates a different network configuration",
        {{"have_routers", std::to_string(net_.num_routers())},
         {"want_routers", std::to_string(sim.config().num_routers())}});
  }
  sim_ = &sim;
}

void TrafficHarness::add_gt_stream(const GtStream& s) {
  const noc::NetworkConfig& net = net_;
  TMSIM_CHECK_MSG(s.src < net.num_routers() && s.dst < net.num_routers(),
                  "GT stream endpoint out of range");
  TMSIM_CHECK_MSG(s.src != s.dst, "GT stream src == dst");
  TMSIM_CHECK_MSG(s.vc < net.router.num_vcs, "GT stream vc out of range");
  TMSIM_CHECK_MSG(s.period >= 1, "GT stream period must be >= 1");
  gt_streams_.push_back(s);
}

void TrafficHarness::set_be_load(double load, std::vector<unsigned> vcs,
                                 std::size_t bytes) {
  TMSIM_CHECK_MSG(load >= 0.0 && load <= 1.0, "BE load must be in [0,1]");
  TMSIM_CHECK_MSG(!vcs.empty(), "BE traffic needs at least one VC");
  for (unsigned v : vcs) {
    TMSIM_CHECK_MSG(v < net_.router.num_vcs, "BE vc out of range");
  }
  be_load_ = load;
  be_vcs_ = std::move(vcs);
  be_payload_flits_ = payload_flits_for_bytes(bytes);
}

std::uint32_t TrafficHarness::flight_key(std::size_t dst, unsigned vc,
                                         unsigned seq) const {
  return static_cast<std::uint32_t>((dst << 8) | (vc << 6) | seq);
}

std::size_t TrafficHarness::submit_packet(PacketClass cls, std::size_t src,
                                          std::size_t dst, unsigned vc,
                                          std::size_t payload_flits) {
  const noc::NetworkConfig& net = net_;
  TMSIM_CHECK_MSG(src < net.num_routers() && dst < net.num_routers(),
                  "packet endpoint out of range");
  TMSIM_CHECK_MSG(src != dst, "local loopback packets are not modeled");
  TMSIM_CHECK_MSG(vc < net.router.num_vcs, "packet vc out of range");
  TMSIM_CHECK_MSG(payload_flits >= 1, "packet needs a payload flit");

  PacketRecord rec;
  rec.cls = cls;
  rec.src = src;
  rec.dst = dst;
  rec.vc = vc;
  rec.fill = static_cast<std::uint16_t>(rng_.next());
  rec.flits = payload_flits + 1;
  rec.created = cycle_;
  records_.push_back(rec);
  const std::size_t id = records_.size() - 1;
  // The sequence tag is allocated at injection time (see inject()).
  nodes_[src].src_q[vc].push_back(
      PendingPacket{id, dst, vc, payload_flits, rec.fill});
  return id;
}

noc::Flit TrafficHarness::flit_of(const PendingPacket& p, unsigned seq,
                                  std::size_t i) const {
  const Coord dc = router_coord(net_, p.dst);
  return packet_flit(static_cast<unsigned>(dc.x), static_cast<unsigned>(dc.y),
                     p.vc, seq, p.payload_flits, p.fill, i);
}

void TrafficHarness::generate(SystemCycle cycle) {
  for (const GtStream& s : gt_streams_) {
    if (cycle >= s.phase && (cycle - s.phase) % s.period == 0) {
      submit_packet(PacketClass::kGuaranteedThroughput, s.src, s.dst, s.vc,
                    payload_flits_for_bytes(s.bytes));
    }
  }
  if (be_load_ > 0.0) {
    const noc::NetworkConfig& net = net_;
    const std::size_t n = net.num_routers();
    // `load` is flits/cycle; a packet is HEAD + payload flits, and only
    // payload+head flits consume channel capacity — we count all flits of
    // the packet against the load, matching "fraction of channel capacity".
    const double p_packet = be_load_ / static_cast<double>(be_payload_flits_ + 1);
    for (std::size_t src = 0; src < n; ++src) {
      if (rng_.next_double() < p_packet) {
        std::size_t dst = rng_.next_below(n - 1);
        if (dst >= src) ++dst;  // uniform over nodes != src
        const unsigned vc = be_vcs_[rng_.next_below(be_vcs_.size())];
        submit_packet(PacketClass::kBestEffort, src, dst, vc,
                      be_payload_flits_);
      }
    }
  }
  for (Generator& g : generators_) {
    g(cycle, *this);
  }
}

void TrafficHarness::inject() {
  const std::size_t vcs = net_.router.num_vcs;
  for (std::size_t r = 0; r < nodes_.size(); ++r) {
    Node& node = nodes_[r];
    // Round-robin over VCs with data and a credit; one flit per cycle.
    for (std::size_t i = 0; i < vcs; ++i) {
      const std::size_t vc = (node.rr_vc + i) % vcs;
      if (node.credits[vc] == 0) {
        continue;
      }
      noc::Flit flit;
      if (node.sending[vc]) {
        // Mid-packet: next payload flit of the record in flight.
        PacketRecord& rec = records_[node.send_record[vc]];
        const PendingPacket proxy{node.send_record[vc], rec.dst, rec.vc,
                                  rec.flits - 1, rec.fill};
        flit = flit_of(proxy, rec.seq, node.send_pos[vc] + 1);
        ++node.send_pos[vc];
        if (node.send_pos[vc] == rec.flits - 1) {
          node.sending[vc] = false;
        }
      } else if (!node.src_q[vc].empty()) {
        PendingPacket& p = node.src_q[vc].front();
        // Allocate a sequence tag unique among packets currently in the
        // network towards (dst, vc); if all 64 are taken, the packet
        // waits — backpressure, not an error.
        std::uint16_t& ctr = next_seq_[p.dst * vcs + vc];
        unsigned seq = 0;
        bool found = false;
        for (unsigned attempt = 0; attempt < 64; ++attempt) {
          seq = (ctr + attempt) % 64;
          if (!in_flight_.contains(flight_key(p.dst, vc, seq))) {
            found = true;
            break;
          }
        }
        if (!found) {
          continue;
        }
        ctr = static_cast<std::uint16_t>((seq + 1) % 64);
        PacketRecord& rec = records_[p.record];
        rec.seq = seq;
        rec.injected = true;
        rec.injected_head = cycle_;
        in_flight_.emplace(flight_key(p.dst, vc, seq), p.record);
        flit = flit_of(p, seq, 0);
        node.sending[vc] = true;
        node.send_pos[vc] = 0;
        node.send_record[vc] = p.record;
        node.src_q[vc].pop_front();
      } else {
        continue;
      }
      --node.credits[vc];
      node.rr_vc = (vc + 1) % vcs;
      sim_->set_local_input(
          r, LinkForward{true, static_cast<std::uint8_t>(vc), flit});
      ++flits_injected_;
      break;
    }
  }
}

void TrafficHarness::retrieve() {
  const std::size_t vcs = net_.router.num_vcs;
  for (std::size_t r = 0; r < nodes_.size(); ++r) {
    Node& node = nodes_[r];
    // Credits the router returned for its local input queues.
    const noc::CreditWires cr = sim_->local_input_credits(r);
    for (std::size_t vc = 0; vc < vcs; ++vc) {
      if (cr.get(vc)) {
        TMSIM_CHECK_MSG(node.credits[vc] < net_.router.queue_depth,
                        "NI credit counter overflow");
        ++node.credits[vc];
      }
    }
    // Delivered flit, if any.
    const LinkForward f = sim_->local_output(r);
    if (!f.valid) {
      continue;
    }
    ++flits_delivered_;
    const unsigned vc = f.vc;
    if (f.flit.type == noc::FlitType::kHead) {
      const noc::HeadFields h = noc::decode_head(f.flit.payload);
      TMSIM_CHECK_MSG(h.vc == vc, "HEAD delivered on a different VC than "
                                  "its header says");
      const std::size_t dst =
          router_index(net_, Coord{h.dest_x, h.dest_y});
      TMSIM_CHECK_MSG(dst == r, "flit delivered to the wrong node");
      const auto it = in_flight_.find(flight_key(r, vc, h.seq));
      TMSIM_CHECK_MSG(it != in_flight_.end(),
                      "delivered HEAD matches no packet in flight");
      TMSIM_CHECK_MSG(!node.receiving_active[vc],
                      "HEAD arrived while a packet is still being "
                      "reassembled on this VC (wormhole interleaving bug)");
      node.receiving[vc] = it->second;
      node.receiving_active[vc] = true;
      node.recv_pos[vc] = 0;
    } else {
      TMSIM_CHECK_MSG(node.receiving_active[vc],
                      "BODY/TAIL arrived with no packet open on this VC");
    }
    const std::size_t id = node.receiving[vc];
    if (opt_.verify_payload) {
      const PacketRecord& rec = records_[id];
      const std::size_t pos = node.recv_pos[vc];
      TMSIM_CHECK_MSG(pos < rec.flits, "more flits delivered than sent");
      const Coord dc = router_coord(net_, rec.dst);
      const noc::Flit exp = packet_flit(
          static_cast<unsigned>(dc.x), static_cast<unsigned>(dc.y), rec.vc,
          rec.seq, rec.flits - 1, rec.fill, pos);
      TMSIM_CHECK_MSG(exp == f.flit,
                      "delivered flit differs from the one sent "
                      "(bit-accuracy violation)");
    }
    ++node.recv_pos[vc];
    if (f.flit.type == noc::FlitType::kTail) {
      PacketRecord& rec = records_[id];
      TMSIM_CHECK_MSG(node.recv_pos[vc] == rec.flits,
                      "packet delivered with wrong flit count");
      rec.delivered = true;
      rec.delivered_tail = cycle_;
      node.receiving_active[vc] = false;
      in_flight_.erase(flight_key(r, vc, rec.seq));
    }
  }
}

void TrafficHarness::run(std::size_t cycles) {
  for (std::size_t i = 0; i < cycles; ++i) {
    if (overloaded_ && opt_.stop_on_overload) {
      return;
    }
    cycle_ = sim_->cycle();
    generate(cycle_);
    inject();
    sim_->step();
    retrieve();
    if (!overloaded_ && source_backlog() > opt_.overload_threshold) {
      overloaded_ = true;
    }
  }
}

std::size_t TrafficHarness::source_backlog() const {
  std::size_t total = 0;
  for (const Node& node : nodes_) {
    for (std::size_t vc = 0; vc < node.src_q.size(); ++vc) {
      for (const PendingPacket& p : node.src_q[vc]) {
        total += p.payload_flits + 1;
      }
      if (node.sending[vc]) {
        total += records_[node.send_record[vc]].flits - 1 -
                 node.send_pos[vc];
      }
    }
  }
  return total;
}

LatencySummary TrafficHarness::summarize(PacketClass cls) const {
  LatencySummary s;
  for (const PacketRecord& r : records_) {
    if (r.cls != cls || !r.delivered || r.injected_head < opt_.warmup_cycles) {
      continue;
    }
    ++s.delivered;
    s.network.add(static_cast<double>(r.network_latency()));
    s.access.add(static_cast<double>(r.access_delay()));
    s.total.add(static_cast<double>(r.total_latency()));
  }
  return s;
}

void TrafficHarness::validate_gt_streams(const noc::NetworkConfig& net,
                                         const std::vector<GtStream>& streams) {
  // Walk each stream's XY path and record the (directed link, VC) pairs it
  // occupies; any pair claimed twice breaks the one-stream-per-VC rule.
  std::set<std::tuple<std::size_t, int, unsigned>> claimed;  // (router,port,vc)
  for (const GtStream& s : streams) {
    Coord here = router_coord(net, s.src);
    const Coord dest = router_coord(net, s.dst);
    std::size_t guard = 0;
    while (!(here == dest)) {
      const Port p = route_xy(net, here, dest);
      TMSIM_CHECK_MSG(p != Port::kLocal, "routing stalled mid-path");
      const std::size_t r = router_index(net, here);
      const auto key = std::make_tuple(r, static_cast<int>(p), s.vc);
      TMSIM_CHECK_MSG(claimed.insert(key).second,
                      "two GT streams share link (router " +
                          std::to_string(r) + ", " + noc::port_name(p) +
                          ") on VC " + std::to_string(s.vc));
      const auto next = neighbour(net, here, p);
      TMSIM_CHECK_MSG(next.has_value(), "route left the grid");
      here = *next;
      TMSIM_CHECK_MSG(++guard <= net.num_routers(), "routing loop");
    }
  }
}

}  // namespace tmsim::traffic
