// TrafficHarness: software side of the simulation — the role the ARM9
// plays in the paper (§5.3): generate stimuli, feed them into the
// simulated network through the local ports, retrieve delivered flits, and
// analyze latency/throughput. It drives any NocSimulation, so the same
// workload runs bit-identically on every engine.
//
// Per-node NodeInterface behaviour (the "stimuli interface" + NI):
//  - packets are flit-ized into per-VC source queues (creation timestamped);
//  - one flit per cycle may enter the network: a round-robin pick over the
//    VCs that have data and an injection credit (credits mirror the free
//    slots of the router's local input queues, replenished by the credit
//    wires the router returns);
//  - delivered flits are reassembled per VC; HEAD flits carry (dst, vc,
//    seq) which the tracker resolves back to the packet record.
//
// Overload: the paper aborts when the network refuses traffic for too long
// (§5.3). The harness records an `overloaded()` flag once any source queue
// exceeds a threshold and can optionally stop.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "analysis/stats.h"
#include "common/rng.h"
#include "noc/network.h"
#include "traffic/packet.h"

namespace tmsim::traffic {

/// Aggregated latency results for one packet class.
struct LatencySummary {
  analysis::StatAccumulator network;  ///< head-injection → tail-delivery
  analysis::StatAccumulator access;   ///< creation → head-injection
  analysis::StatAccumulator total;
  std::size_t delivered = 0;
};

/// One guaranteed-throughput stream: a periodic point-to-point connection
/// with a dedicated VC (§2.1: "one single data stream assigned per VC").
struct GtStream {
  std::size_t src = 0;
  std::size_t dst = 0;
  unsigned vc = 0;
  SystemCycle period = 0;   ///< cycles between packet submissions
  SystemCycle phase = 0;    ///< first submission cycle
  std::size_t bytes = kGtPacketBytes;

  friend bool operator==(const GtStream&, const GtStream&) = default;
};

class TrafficHarness {
 public:
  struct Options {
    std::uint64_t seed = 1;
    /// Re-check every delivered payload flit against what was sent.
    bool verify_payload = false;
    /// Source-queue flit count that flags overload.
    std::size_t overload_threshold = 1u << 16;
    bool stop_on_overload = false;
    /// Packets injected before this cycle are excluded from summaries.
    SystemCycle warmup_cycles = 0;
  };

  TrafficHarness(noc::NocSimulation& sim, Options opt);
  explicit TrafficHarness(noc::NocSimulation& sim)
      : TrafficHarness(sim, Options()) {}

  /// Re-points the harness at a different NocSimulation over an *equal*
  /// NetworkConfig (throws otherwise). All harness-side state — source
  /// queues, credits, packet records, RNG position — carries over
  /// untouched; the new simulation must hold the same committed router
  /// state (restored from a checkpoint) for the handoff to be
  /// bit-identical. This is how a preempted farm session resumes on a
  /// different worker's cached engine.
  void rebind(noc::NocSimulation& sim);

  /// Adds a periodic GT stream.
  void add_gt_stream(const GtStream& stream);

  /// Stops all GT streams (already-submitted packets still drain).
  void clear_gt_streams() { gt_streams_.clear(); }

  /// Uniform-random best-effort traffic: every node independently submits
  /// `load` flits per cycle on average (fraction of channel capacity,
  /// Fig. 1's x-axis), as packets of `bytes` payload, on a VC drawn from
  /// `vcs`, to a uniform destination != src.
  void set_be_load(double load, std::vector<unsigned> vcs = {2, 3},
                   std::size_t bytes = kBePacketBytes);

  /// Arbitrary extra generator, called once per cycle before injection.
  using Generator = std::function<void(SystemCycle, TrafficHarness&)>;
  void add_generator(Generator g) { generators_.push_back(std::move(g)); }
  void clear_generators() { generators_.clear(); }

  /// Queues one packet at node `src` for delivery to `dst` on `vc`.
  /// Returns the packet record index.
  std::size_t submit_packet(PacketClass cls, std::size_t src, std::size_t dst,
                            unsigned vc, std::size_t payload_flits);

  /// Runs `cycles` system cycles (generate → inject → step → retrieve).
  void run(std::size_t cycles);

  const std::vector<PacketRecord>& records() const { return records_; }
  LatencySummary summarize(PacketClass cls) const;

  bool overloaded() const { return overloaded_; }
  std::size_t flits_injected() const { return flits_injected_; }
  std::size_t flits_delivered() const { return flits_delivered_; }
  /// Flits currently waiting in source queues (backlog).
  std::size_t source_backlog() const;
  SystemCycle current_cycle() const { return cycle_; }

  /// Checks that no two GT streams share a (link, VC) pair along their XY
  /// paths — the condition under which the round-robin arbitration gives
  /// a hard latency bound (§2.1). Throws on violation.
  static void validate_gt_streams(const noc::NetworkConfig& net,
                                  const std::vector<GtStream>& streams);

 private:
  /// A packet waiting in a source queue. Flits are materialized lazily at
  /// injection time — in particular the HEAD's sequence tag is allocated
  /// only when the packet actually enters the network, so a deep source
  /// backlog (saturation) exerts backpressure instead of exhausting the
  /// 6-bit tag space.
  struct PendingPacket {
    std::size_t record = 0;
    std::size_t dst = 0;
    unsigned vc = 0;
    std::size_t payload_flits = 0;
    std::uint16_t fill = 0;
  };
  struct Node {
    std::vector<std::deque<PendingPacket>> src_q;  // per vc
    std::vector<std::size_t> credits;              // per vc
    std::size_t rr_vc = 0;
    // Sending side: flit cursor of the packet in flight per VC (the HEAD
    // has been injected; 0 = next is payload flit 0).
    std::vector<bool> sending;             // per vc
    std::vector<std::size_t> send_pos;     // per vc: next payload index
    std::vector<std::size_t> send_record;  // per vc: record in flight
    std::vector<std::size_t> receiving;  // per vc: packet being reassembled
    std::vector<bool> receiving_active;  // per vc
    std::vector<std::size_t> recv_pos;   // per vc: payload index
  };

  /// The i-th flit (0 == HEAD) of a pending packet — the same formula
  /// build_packet() uses, computed on demand.
  noc::Flit flit_of(const PendingPacket& p, unsigned seq,
                    std::size_t i) const;

  void generate(SystemCycle cycle);
  void inject();
  void retrieve();
  std::uint32_t flight_key(std::size_t dst, unsigned vc, unsigned seq) const;

  noc::NocSimulation* sim_;  // never null; rebindable (see rebind())
  // Own copy of the bound network's config: rebind() must validate the
  // new engine without dereferencing sim_ — after a detach the old
  // engine may live in another worker's cache (concurrently reused or
  // already evicted and freed).
  noc::NetworkConfig net_;
  Options opt_;
  SplitMix64 rng_;
  std::vector<Node> nodes_;
  std::vector<PacketRecord> records_;
  std::vector<GtStream> gt_streams_;
  std::vector<Generator> generators_;
  double be_load_ = 0.0;
  std::vector<unsigned> be_vcs_;
  std::size_t be_payload_flits_ = 0;
  std::unordered_map<std::uint32_t, std::size_t> in_flight_;  // key → record
  std::vector<std::uint16_t> next_seq_;  // per (dst * num_vcs + vc)
  // verify_payload: (fill, seq) per record so delivered flits can be
  // recomputed and compared.
  std::unordered_map<std::size_t, std::pair<std::uint16_t, unsigned>>
      expected_;
  bool overloaded_ = false;
  std::size_t flits_injected_ = 0;
  std::size_t flits_delivered_ = 0;
  SystemCycle cycle_ = 0;
};

}  // namespace tmsim::traffic
