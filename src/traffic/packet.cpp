#include "traffic/packet.h"

#include "common/error.h"

namespace tmsim::traffic {

noc::Flit packet_flit(unsigned dest_x, unsigned dest_y, unsigned vc,
                      unsigned seq, std::size_t payload_flits,
                      std::uint16_t fill, std::size_t index) {
  TMSIM_CHECK_MSG(payload_flits >= 1,
                  "packet needs at least one payload flit (the TAIL)");
  TMSIM_CHECK_MSG(index <= payload_flits, "flit index out of range");
  if (index == 0) {
    return noc::Flit{noc::FlitType::kHead,
                     noc::make_head_payload(dest_x, dest_y, vc, seq)};
  }
  const bool last = (index == payload_flits);
  // Deterministic, position-dependent payload so that a dropped or
  // reordered flit cannot produce a bit-identical stream.
  const auto word = static_cast<std::uint16_t>(
      fill ^ (0x9e37u * static_cast<std::uint16_t>(index)));
  return noc::Flit{last ? noc::FlitType::kTail : noc::FlitType::kBody, word};
}

std::vector<noc::Flit> build_packet(unsigned dest_x, unsigned dest_y,
                                    unsigned vc, unsigned seq,
                                    std::size_t payload_flits,
                                    std::uint16_t fill) {
  std::vector<noc::Flit> flits;
  flits.reserve(payload_flits + 1);
  for (std::size_t i = 0; i <= payload_flits; ++i) {
    flits.push_back(
        packet_flit(dest_x, dest_y, vc, seq, payload_flits, fill, i));
  }
  return flits;
}

}  // namespace tmsim::traffic
