#include "traffic/workloads.h"

namespace tmsim::traffic {

std::vector<GtStream> fig1_gt_streams(const noc::NetworkConfig& net,
                                      SystemCycle period) {
  TMSIM_CHECK_MSG(net.width >= 4, "2-hop stream pattern needs width >= 4");
  std::vector<GtStream> streams;
  for (std::size_t y = 0; y < net.height; ++y) {
    for (std::size_t x = 0; x < net.width; ++x) {
      GtStream s;
      s.src = router_index(net, noc::Coord{x, y});
      // Two hops east where that stays on-grid, two hops west otherwise —
      // wrap-free, so the pattern works identically on mesh and torus and
      // contributes no wrap-around channel dependencies (see the torus
      // deadlock note in DESIGN.md §7).
      const std::size_t dx = (x + 2 < net.width) ? x + 2 : x - 2;
      s.dst = router_index(net, noc::Coord{dx, y});
      s.vc = static_cast<unsigned>(x % 2);
      s.period = period;
      // Stagger submissions so all streams do not burst on cycle 0.
      s.phase = (s.src * 17) % period;
      streams.push_back(s);
    }
  }
  TrafficHarness::validate_gt_streams(net, streams);
  return streams;
}

std::size_t max_stream_hops(const noc::NetworkConfig& net,
                            const std::vector<GtStream>& streams) {
  std::size_t hops = 0;
  for (const GtStream& s : streams) {
    hops = std::max(hops, route_hops(net, router_coord(net, s.src),
                                     router_coord(net, s.dst)));
  }
  return hops;
}

}  // namespace tmsim::traffic
