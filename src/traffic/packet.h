// Packet construction and lifetime records.
//
// Packet sizes follow §2.1's case study: GT packets carry 256 bytes of
// payload, BE packets 10 bytes. With a 16-bit flit payload that is 128
// resp. 5 payload flits, plus the HEAD flit that carries only routing
// information — so a GT packet is 129 flits ending in a TAIL, a BE packet
// 6 flits. (A packet is at least HEAD+TAIL; the last payload flit is the
// TAIL.)
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "noc/flit.h"

namespace tmsim::traffic {

enum class PacketClass : std::uint8_t {
  kGuaranteedThroughput = 0,
  kBestEffort = 1,
};

inline const char* class_name(PacketClass c) {
  return c == PacketClass::kGuaranteedThroughput ? "GT" : "BE";
}

/// Payload flits for a payload of `bytes` bytes (16-bit flits).
inline std::size_t payload_flits_for_bytes(std::size_t bytes) {
  return (bytes * 8 + noc::kPayloadBits - 1) / noc::kPayloadBits;
}

/// Paper defaults.
inline constexpr std::size_t kGtPacketBytes = 256;  // → 129 flits
inline constexpr std::size_t kBePacketBytes = 10;   // → 6 flits

/// The `index`-th flit (0 == HEAD) of a packet: HEAD(dest, vc, seq)
/// followed by `payload_flits` payload flits, the last of which is the
/// TAIL. Payload words derive deterministically from `fill` (a pattern
/// seed) and the position, so bit-accuracy checks cover payload bits and
/// flits can be materialized lazily at injection time.
noc::Flit packet_flit(unsigned dest_x, unsigned dest_y, unsigned vc,
                      unsigned seq, std::size_t payload_flits,
                      std::uint16_t fill, std::size_t index);

/// All flits of one packet (convenience over packet_flit).
std::vector<noc::Flit> build_packet(unsigned dest_x, unsigned dest_y,
                                    unsigned vc, unsigned seq,
                                    std::size_t payload_flits,
                                    std::uint16_t fill);

/// One packet's life-cycle timestamps, filled in by the harness.
struct PacketRecord {
  PacketClass cls = PacketClass::kBestEffort;
  std::size_t src = 0;
  std::size_t dst = 0;
  unsigned vc = 0;
  /// Sequence tag — allocated when the HEAD enters the network.
  unsigned seq = 0;
  /// Payload pattern seed (drawn at creation; flits derive from it).
  std::uint16_t fill = 0;
  std::size_t flits = 0;
  SystemCycle created = 0;         ///< generated into the source queue
  SystemCycle injected_head = 0;   ///< HEAD driven onto the local link
  SystemCycle delivered_tail = 0;  ///< TAIL observed at the destination
  bool injected = false;
  bool delivered = false;

  /// Head-injection → tail-delivery (the Fig. 1 metric).
  SystemCycle network_latency() const { return delivered_tail - injected_head; }
  /// Source queueing before the HEAD enters the network — the paper's
  /// dedicated "access delay" monitor buffer (§5.2).
  SystemCycle access_delay() const { return injected_head - created; }
  SystemCycle total_latency() const { return delivered_tail - created; }
};

}  // namespace tmsim::traffic
