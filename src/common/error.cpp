#include "common/error.h"

namespace tmsim::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::string what = "TMSIM_CHECK failed: ";
  what += expr;
  what += " at ";
  what += file;
  what += ':';
  what += std::to_string(line);
  if (!msg.empty()) {
    what += " — ";
    what += msg;
  }
  throw Error(what);
}

}  // namespace tmsim::detail
