#include "common/error.h"

namespace tmsim {

ContextualError::ContextualError(const std::string& what, Context context)
    : Error(format(what, context)), context_(std::move(context)) {}

std::string ContextualError::context_value(const std::string& key) const {
  for (const auto& [k, v] : context_) {
    if (k == key) {
      return v;
    }
  }
  return {};
}

std::string ContextualError::format(const std::string& what,
                                    const Context& context) {
  if (context.empty()) {
    return what;
  }
  std::string out = what;
  out += " [";
  bool first = true;
  for (const auto& [k, v] : context) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += k;
    out += '=';
    out += v;
  }
  out += ']';
  return out;
}

}  // namespace tmsim

namespace tmsim::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::string what = "TMSIM_CHECK failed: ";
  what += expr;
  what += " at ";
  what += file;
  what += ':';
  what += std::to_string(line);
  if (!msg.empty()) {
    what += " — ";
    what += msg;
  }
  throw Error(what);
}

}  // namespace tmsim::detail
