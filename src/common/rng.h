// Random number generation.
//
// The paper offloads stimuli randomness to a hardware RNG inside the FPGA
// ("Reading a 32 bit random number from the FPGA is noticeably faster
// compared to the standard rand() function in C", §5.3) and reports a +50%
// simulation-speed gain from that offload. Lfsr32 models that hardware
// generator: a maximal-length 32-bit Fibonacci LFSR, one shifted word per
// read, exactly reproducible in both the FPGA model and host-side checks.
//
// SplitMix64 is a host-quality generator used for everything that is *not*
// modeling the FPGA RNG (seeding sweeps, property-test case generation).
#pragma once

#include <cstdint>

namespace tmsim {

/// Maximal-length 32-bit Fibonacci LFSR (taps 32,22,2,1 — a standard
/// primitive polynomial), as synthesized in the FPGA design's RNG block.
class Lfsr32 {
 public:
  /// Seed must be non-zero (the all-zero LFSR state is a fixed point);
  /// zero seeds are mapped to a fixed non-zero constant like hardware
  /// reset logic would.
  explicit Lfsr32(std::uint32_t seed = 0x13579bdfu)
      : state_(seed == 0 ? 0x13579bdfu : seed) {}

  /// Advances the register by 32 shifts and returns the new state —
  /// one "read of the 32-bit random number register".
  std::uint32_t next() {
    for (int i = 0; i < 32; ++i) {
      step();
    }
    return state_;
  }

  /// Single-bit shift (one FPGA clock of the RNG block).
  void step() {
    // Fibonacci LFSR, taps at bits 31, 21, 1, 0 (1-indexed 32,22,2,1).
    const std::uint32_t bit = ((state_ >> 31) ^ (state_ >> 21) ^
                               (state_ >> 1) ^ state_) & 1u;
    state_ = (state_ << 1) | bit;
  }

  std::uint32_t state() const { return state_; }

 private:
  std::uint32_t state_;
};

/// SplitMix64 — tiny, statistically solid, and fully deterministic across
/// platforms (unlike std::mt19937's distribution wrappers).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    // Modulo bias is < 2^-40 for the bounds used here (< 2^24).
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace tmsim
