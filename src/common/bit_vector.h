// Arbitrary-width bit vector with bit-accurate field packing.
//
// This is the fundamental data type of the reproduction: the paper's method
// extracts every register of a hardware block and concatenates the values
// into one memory word ("old" and "new", §5.2). BitVector is that memory
// word. StateLayout (noc/state_layout.h) assigns (offset,width) slots; the
// simulators read and write fields through get_field/set_field, so the
// register file layout in our state memory is explicit and countable —
// which is how bench/table1 derives the paper's Table 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace tmsim {

/// Fixed-width sequence of bits, LSB-first, backed by 64-bit words.
/// Width is fixed at construction; all accesses are bounds-checked.
class BitVector {
 public:
  /// Creates an all-zero vector of `width` bits. Width zero is allowed
  /// (useful for blocks with no state).
  explicit BitVector(std::size_t width = 0);

  /// Number of bits.
  std::size_t width() const { return width_; }

  /// Reads a single bit.
  bool get_bit(std::size_t pos) const {
    TMSIM_CHECK_MSG(pos < width_, "bit read out of range");
    return (words_[pos / 64] >> (pos % 64)) & 1u;
  }

  /// Writes a single bit.
  void set_bit(std::size_t pos, bool value) {
    TMSIM_CHECK_MSG(pos < width_, "bit write out of range");
    const std::uint64_t mask = std::uint64_t{1} << (pos % 64);
    if (value) {
      words_[pos / 64] |= mask;
    } else {
      words_[pos / 64] &= ~mask;
    }
  }

  /// Reads `width` (1..64) bits starting at `offset`, returned LSB-aligned.
  /// Inline: this is the innermost loop of the sequential simulator (the
  /// state-memory word is read field by field every delta cycle).
  std::uint64_t get_field(std::size_t offset, std::size_t width) const {
    TMSIM_CHECK_MSG(width >= 1 && width <= 64, "field width must be 1..64");
    TMSIM_CHECK_MSG(offset + width <= width_, "field read out of range");
    const std::size_t word = offset / 64;
    const std::size_t shift = offset % 64;
    std::uint64_t value = words_[word] >> shift;
    if (shift != 0 && shift + width > 64) {
      value |= words_[word + 1] << (64 - shift);
    }
    if (width < 64) {
      value &= (std::uint64_t{1} << width) - 1;
    }
    return value;
  }

  /// Writes the low `width` (1..64) bits of `value` at `offset`. Bits of
  /// `value` above `width` must be zero (checked) — silently dropping bits
  /// is how bit-accuracy bugs hide.
  void set_field(std::size_t offset, std::size_t width, std::uint64_t value) {
    TMSIM_CHECK_MSG(width >= 1 && width <= 64, "field width must be 1..64");
    TMSIM_CHECK_MSG(offset + width <= width_, "field write out of range");
    if (width < 64) {
      TMSIM_CHECK_MSG((value >> width) == 0,
                      "value has bits above the field width");
    }
    const std::size_t word = offset / 64;
    const std::size_t shift = offset % 64;
    const std::uint64_t mask =
        width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
    words_[word] = (words_[word] & ~(mask << shift)) | (value << shift);
    if (shift != 0 && shift + width > 64) {
      const std::size_t spill = shift + width - 64;
      const std::uint64_t spill_mask = (std::uint64_t{1} << spill) - 1;
      words_[word + 1] =
          (words_[word + 1] & ~spill_mask) | (value >> (64 - shift));
    }
  }

  /// Copies `width` bits from `src` starting at `src_offset` into this
  /// vector at `dst_offset`. Used for whole-register-file moves.
  void copy_bits(std::size_t dst_offset, const BitVector& src,
                 std::size_t src_offset, std::size_t width);

  /// Sets every bit to zero.
  void clear();

  /// Number of set bits.
  std::size_t popcount() const;

  /// Hex string, MSB first, width rounded up to nibbles (debug/trace aid).
  std::string to_hex() const;

  friend bool operator==(const BitVector& a, const BitVector& b);
  friend bool operator!=(const BitVector& a, const BitVector& b) {
    return !(a == b);
  }

  /// Raw word access for the memory models (read-only).
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::size_t width_;
  std::vector<std::uint64_t> words_;
};

/// Convenience: builds a BitVector of `width` bits holding `value`.
BitVector make_bit_vector(std::size_t width, std::uint64_t value);

}  // namespace tmsim
