// Fixed-capacity ring buffer.
//
// Two distinct uses in this reproduction:
//  - the router's flit input queues (noc/), where capacity is the
//    synthesized queue depth and overflow is a hardware bug;
//  - the FPGA↔ARM cyclic buffers (fpga/cyclic_buffer.h builds on the same
//    pointer discipline but adds the paper's timestamping and the split
//    hardware/software read-write pointer pair).
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.h"

namespace tmsim {

/// Bounded FIFO with O(1) push/pop and checked overflow/underflow.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : slots_(capacity), capacity_(capacity) {
    TMSIM_CHECK_MSG(capacity > 0, "ring buffer capacity must be positive");
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  /// Appends an element; throws on overflow.
  void push(const T& value) {
    TMSIM_CHECK_MSG(!full(), "ring buffer overflow");
    slots_[write_] = value;
    write_ = next(write_);
    ++size_;
  }

  /// Appends like hardware: the write pointer always advances; when full,
  /// the oldest element is overwritten (read pointer advances too). Real
  /// RTL does not trap on a FIFO write-when-full — and the sequential
  /// simulator's dynamic schedule (§4.2) can transiently evaluate a block
  /// against stale link values that would overfill a queue; the result is
  /// discarded on re-evaluation, so the model must mimic hardware rather
  /// than abort. Committed states are checked separately.
  void push_overwrite(const T& value) {
    slots_[write_] = value;
    write_ = next(write_);
    if (full()) {
      read_ = next(read_);
    } else {
      ++size_;
    }
  }

  /// Removes and returns the oldest element; throws on underflow.
  T pop() {
    TMSIM_CHECK_MSG(!empty(), "ring buffer underflow");
    T value = slots_[read_];
    read_ = next(read_);
    --size_;
    return value;
  }

  /// Oldest element without removing it.
  const T& front() const {
    TMSIM_CHECK_MSG(!empty(), "front() on empty ring buffer");
    return slots_[read_];
  }

  /// Element `i` positions behind the front (0 == front). Used by tests and
  /// by the bit-serialization of queue contents.
  const T& at(std::size_t i) const {
    TMSIM_CHECK_MSG(i < size_, "at() out of range");
    return slots_[(read_ + i) % capacity_];
  }

  void clear() {
    read_ = write_ = 0;
    size_ = 0;
  }

  /// Raw slot access by physical index — needed when serializing queue
  /// state the way hardware stores it (all slots, plus rd/wr pointers),
  /// not just the logically live elements.
  const T& slot(std::size_t physical) const { return slots_.at(physical); }
  T& slot(std::size_t physical) { return slots_.at(physical); }
  std::size_t read_pos() const { return read_; }
  std::size_t write_pos() const { return write_; }

  /// Restores pointer state during deserialization from a state memory word.
  void restore(std::size_t read_pos, std::size_t write_pos,
               std::size_t size) {
    TMSIM_CHECK_MSG(read_pos < capacity_ && write_pos < capacity_ &&
                        size <= capacity_,
                    "invalid ring buffer restore state");
    TMSIM_CHECK_MSG((read_pos + size) % capacity_ == write_pos ||
                        (size == capacity_ && read_pos == write_pos),
                    "inconsistent ring buffer pointers");
    read_ = read_pos;
    write_ = write_pos;
    size_ = size;
  }

 private:
  std::size_t next(std::size_t i) const { return (i + 1) % capacity_; }

  std::vector<T> slots_;
  std::size_t capacity_;
  std::size_t read_ = 0;
  std::size_t write_ = 0;
  std::size_t size_ = 0;
};

}  // namespace tmsim
