// tmsim - time-multiplexed simulator
//
// Error handling: all invariant violations inside the simulators throw
// tmsim::Error. Simulation engines are deterministic, so an Error always
// indicates either a misuse of the public API or a genuine bug in a model
// (e.g. a router overflowing a queue despite credit flow control). Both must
// surface loudly rather than silently corrupt a multi-hour simulation.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tmsim {

/// Exception thrown on any API misuse or violated simulator invariant.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Error carrying structured key/value diagnostics alongside the message.
/// A long-running host can log or inspect the context programmatically
/// instead of parsing the what() string.
class ContextualError : public Error {
 public:
  using Context = std::vector<std::pair<std::string, std::string>>;

  ContextualError(const std::string& what, Context context);

  const Context& context() const { return context_; }

  /// First value stored under `key`, or an empty string.
  std::string context_value(const std::string& key) const;

 private:
  static std::string format(const std::string& what, const Context& context);

  Context context_;
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace tmsim

/// Always-on invariant check (simulators are useless when silently wrong,
/// so these are not compiled out in release builds).
#define TMSIM_CHECK(expr)                                                 \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::tmsim::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
    }                                                                     \
  } while (false)

/// Invariant check with a context message (string or streamable expression
/// already formatted by the caller).
#define TMSIM_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::tmsim::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg); \
    }                                                                      \
  } while (false)
