// Shared scalar types and small utilities.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tmsim {

/// A clock cycle of the *simulated* parallel system ("system cycle", §4).
using SystemCycle = std::uint64_t;

/// A clock cycle of the sequential simulator itself ("delta cycle", §4):
/// one block evaluation; does not advance simulated time.
using DeltaCycle = std::uint64_t;

/// Number of bits needed to address `n` distinct values (ceil(log2(n)),
/// minimum 1). This is the width synthesis tools give a binary-encoded
/// pointer or counter register.
constexpr std::size_t bits_for(std::size_t n) {
  std::size_t bits = 1;
  while ((std::size_t{1} << bits) < n) {
    ++bits;
  }
  return bits;
}

}  // namespace tmsim
