#include "common/bit_vector.h"

#include <bit>

namespace tmsim {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t word_count(std::size_t width) {
  return (width + kWordBits - 1) / kWordBits;
}
}  // namespace

BitVector::BitVector(std::size_t width)
    : width_(width), words_(word_count(width), 0) {}





void BitVector::copy_bits(std::size_t dst_offset, const BitVector& src,
                          std::size_t src_offset, std::size_t width) {
  TMSIM_CHECK_MSG(dst_offset + width <= width_, "copy destination overflows");
  TMSIM_CHECK_MSG(src_offset + width <= src.width_, "copy source overflows");
  std::size_t done = 0;
  while (done < width) {
    const std::size_t chunk = std::min<std::size_t>(kWordBits, width - done);
    set_field(dst_offset + done, chunk,
              src.get_field(src_offset + done, chunk));
    done += chunk;
  }
}

void BitVector::clear() {
  for (auto& w : words_) {
    w = 0;
  }
}

std::size_t BitVector::popcount() const {
  std::size_t n = 0;
  for (auto w : words_) {
    n += static_cast<std::size_t>(std::popcount(w));
  }
  return n;
}

std::string BitVector::to_hex() const {
  static const char* digits = "0123456789abcdef";
  const std::size_t nibbles = (width_ + 3) / 4;
  std::string out;
  out.reserve(nibbles);
  for (std::size_t i = nibbles; i-- > 0;) {
    const std::size_t offset = i * 4;
    const std::size_t w = std::min<std::size_t>(4, width_ - offset);
    out.push_back(digits[get_field(offset, w)]);
  }
  return out.empty() ? "0" : out;
}

bool operator==(const BitVector& a, const BitVector& b) {
  return a.width_ == b.width_ && a.words_ == b.words_;
}

BitVector make_bit_vector(std::size_t width, std::uint64_t value) {
  BitVector v(width);
  if (width > 0) {
    v.set_field(0, std::min<std::size_t>(width, 64), value);
  }
  return v;
}

}  // namespace tmsim
